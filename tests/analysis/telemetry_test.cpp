// Telemetry subsystem tests: dormant-by-default, single-thread
// determinism, multi-thread consistency invariants, labels unaffected by
// arming, per-phase accumulation, and the registry's TelemetrySink hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/label_propagation.hpp"
#include "cc/registry.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"
#include "util/platform.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

bool counters_all_zero(const telemetry::Counters& c) {
  return c.link_calls == 0 && c.link_retries == 0 && c.link_retry_peak == 0 &&
         c.cas_attempts == 0 && c.cas_failures == 0 && c.compress_calls == 0 &&
         c.compress_hops == 0 && c.phase3_vertices_skipped == 0 &&
         c.phase3_edges_skipped == 0 && c.iterations == 0 &&
         c.sv_hooks_fired == 0 && c.lp_label_updates == 0 &&
         c.serve_queries_served == 0 && c.serve_snapshot_swaps == 0 &&
         c.serve_edges_ingested == 0;
}

TEST(Telemetry, DormantByDefaultCountsNothing) {
  telemetry::set_enabled(false);
  telemetry::reset();
  const Graph g = make_suite_graph("kron", 10);
  afforest_cc(g);
  EXPECT_TRUE(counters_all_zero(telemetry::snapshot()));
  EXPECT_TRUE(telemetry::phases().empty());
}

TEST(Telemetry, SingleThreadCountersDeterministic) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const int saved = num_threads();
  set_num_threads(1);
  const Graph g = make_suite_graph("kron", 10);

  telemetry::Counters first, second;
  {
    const telemetry::ScopedEnable armed;
    afforest_cc(g);
    first = telemetry::snapshot();
  }
  {
    const telemetry::ScopedEnable armed;
    afforest_cc(g);
    second = telemetry::snapshot();
  }
  set_num_threads(saved);

  EXPECT_GT(first.link_calls, 0u);
  EXPECT_GT(first.compress_calls, 0u);
  EXPECT_EQ(first.link_calls, second.link_calls);
  EXPECT_EQ(first.link_retries, second.link_retries);
  EXPECT_EQ(first.link_retry_peak, second.link_retry_peak);
  EXPECT_EQ(first.cas_attempts, second.cas_attempts);
  EXPECT_EQ(first.cas_failures, second.cas_failures);
  EXPECT_EQ(first.compress_calls, second.compress_calls);
  EXPECT_EQ(first.compress_hops, second.compress_hops);
  EXPECT_EQ(first.phase3_vertices_skipped, second.phase3_vertices_skipped);
  EXPECT_EQ(first.phase3_edges_skipped, second.phase3_edges_skipped);
  // Single-threaded, no CAS can lose.
  EXPECT_EQ(first.cas_failures, 0u);
}

TEST(Telemetry, MultiThreadCountersConsistent) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const Graph g = make_suite_graph("kron", 12);
  const telemetry::ScopedEnable armed;
  afforest_cc(g);
  const telemetry::Counters c = telemetry::snapshot();

  EXPECT_GT(c.link_calls, 0u);
  EXPECT_GT(c.compress_calls, 0u);
  EXPECT_LE(c.cas_failures, c.cas_attempts);
  EXPECT_LE(c.link_retry_peak, c.link_retries);
  EXPECT_LE(c.phase3_vertices_skipped,
            static_cast<std::uint64_t>(g.num_nodes()));

  const auto phases = telemetry::phases();
  ASSERT_FALSE(phases.empty());
  bool saw_sampling = false;
  for (const auto& p : phases) {
    EXPECT_GE(p.seconds, 0.0);
    EXPECT_GT(p.count, 0u);
    if (p.name == "afforest.sampling") saw_sampling = true;
  }
  EXPECT_TRUE(saw_sampling);
}

TEST(Telemetry, SvAndLpCountersFire) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 200; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 200);

  {
    const telemetry::ScopedEnable armed;
    shiloach_vishkin(g);
    const telemetry::Counters c = telemetry::snapshot();
    EXPECT_GT(c.iterations, 0u);
    EXPECT_GT(c.sv_hooks_fired, 0u);
  }
  {
    const telemetry::ScopedEnable armed;
    label_propagation(g);
    const telemetry::Counters c = telemetry::snapshot();
    EXPECT_GT(c.iterations, 0u);
    EXPECT_GT(c.lp_label_updates, 0u);
  }
}

TEST(Telemetry, ServingCountersFireAndAggregate) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::ScopedEnable armed;
  telemetry::on_queries_served(3);
  telemetry::on_queries_served(2);
  telemetry::on_snapshot_swap();
  telemetry::on_edges_ingested(17);
  const telemetry::Counters c = telemetry::snapshot();
  EXPECT_EQ(c.serve_queries_served, 5u);
  EXPECT_EQ(c.serve_snapshot_swaps, 1u);
  EXPECT_EQ(c.serve_edges_ingested, 17u);
  telemetry::reset();
  EXPECT_TRUE(counters_all_zero(telemetry::snapshot()));
}

TEST(Telemetry, LabelsUnaffectedByArming) {
  // The instrumentation must observe, never perturb: identical labels with
  // telemetry off and on (single-threaded so the run is deterministic),
  // and an equivalent partition under the default thread count.
  const int saved = num_threads();
  set_num_threads(1);
  const Graph g = make_suite_graph("urand", 11);
  telemetry::set_enabled(false);
  const auto off = afforest_cc(g);
  ComponentLabels<NodeID> on;
  {
    const telemetry::ScopedEnable armed;
    on = afforest_cc(g);
  }
  set_num_threads(saved);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t v = 0; v < off.size(); ++v) EXPECT_EQ(off[v], on[v]);

  ComponentLabels<NodeID> on_mt;
  {
    const telemetry::ScopedEnable armed;
    on_mt = afforest_cc(g);
  }
  EXPECT_TRUE(labels_equivalent(off, on_mt));
}

TEST(Telemetry, ResetClearsCountersAndPhases) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::ScopedEnable armed;
  afforest_cc(make_suite_graph("kron", 10));
  EXPECT_FALSE(counters_all_zero(telemetry::snapshot()));
  EXPECT_FALSE(telemetry::phases().empty());
  telemetry::reset();
  EXPECT_TRUE(counters_all_zero(telemetry::snapshot()));
  EXPECT_TRUE(telemetry::phases().empty());
}

TEST(Telemetry, ScopedPhaseAccumulates) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::ScopedEnable armed;
  for (int i = 0; i < 3; ++i) {
    const telemetry::ScopedPhase phase("test.phase");
  }
  const auto phases = telemetry::phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "test.phase");
  EXPECT_EQ(phases[0].count, 3u);
  EXPECT_GE(phases[0].seconds, 0.0);
}

TEST(Telemetry, CaptureBundlesReport) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::ScopedEnable armed;
  afforest_cc(make_suite_graph("kron", 10));
  const telemetry::Report report = telemetry::capture();
  EXPECT_GT(report.counters.link_calls, 0u);
  EXPECT_FALSE(report.phases.empty());
  EXPECT_GT(report.peak_rss_bytes, 0u);  // /proc/self/status on Linux
}

class RecordingSink : public TelemetrySink {
 public:
  void consume(const std::string& algorithm,
               const telemetry::Report& report) override {
    calls.push_back({algorithm, report});
  }
  std::vector<std::pair<std::string, telemetry::Report>> calls;
};

TEST(TelemetrySinkTest, ReceivesReportPerDispatchWhenArmed) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const Graph g = make_suite_graph("kron", 10);
  RecordingSink sink;
  TelemetrySink* previous = set_telemetry_sink(&sink);
  const telemetry::ScopedEnable armed;

  const auto labels = cc_algorithm("afforest").run(g);
  set_telemetry_sink(previous);

  EXPECT_TRUE(labels_equivalent(labels, afforest_cc(g)));
  ASSERT_EQ(sink.calls.size(), 1u);
  EXPECT_EQ(sink.calls[0].first, "afforest");
  EXPECT_GT(sink.calls[0].second.counters.link_calls, 0u);
  EXPECT_FALSE(sink.calls[0].second.phases.empty());
}

TEST(TelemetrySinkTest, SilentWhenDisarmedOrUninstalled) {
  const Graph g = make_suite_graph("kron", 10);
  RecordingSink sink;
  TelemetrySink* previous = set_telemetry_sink(&sink);
  telemetry::set_enabled(false);
  cc_algorithm("afforest").run(g);  // sink installed, telemetry dormant
  set_telemetry_sink(previous);
  EXPECT_TRUE(sink.calls.empty());

  // No sink installed: dispatch with telemetry armed is also fine.
  const telemetry::ScopedEnable armed;
  const auto labels = cc_algorithm("afforest").run(g);
  EXPECT_TRUE(verify_cc(g, labels));
  EXPECT_TRUE(sink.calls.empty());
}

}  // namespace
}  // namespace afforest
