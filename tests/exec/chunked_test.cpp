#include "exec/chunked.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

Graph hub_graph(NodeID leaves) {
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < leaves; ++i)
    edges.push_back({i, leaves});  // hub is the last vertex
  return build_undirected(edges, leaves + 1);
}

TEST(PlanChunks, SplitsLargeNeighborhoods) {
  const Graph g = hub_graph(100);  // hub degree 100
  const auto chunks = plan_chunks(g, 32);
  // Hub contributes ceil(100/32)=4 chunks; each leaf 1 chunk.
  EXPECT_EQ(chunks.size(), 104u);
  std::int64_t hub_chunks = 0, hub_edges = 0;
  for (const auto& c : chunks) {
    EXPECT_LE(c.end - c.begin, 32);
    if (c.vertex == 100) {
      ++hub_chunks;
      hub_edges += c.end - c.begin;
    }
  }
  EXPECT_EQ(hub_chunks, 4);
  EXPECT_EQ(hub_edges, 100);
}

TEST(PlanChunks, StartOffsetSkipsPrefix) {
  const Graph g = hub_graph(10);
  const auto chunks = plan_chunks(g, 100, 2);
  // Leaves have degree 1 < offset 2, so only the hub (degree 10) remains.
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].vertex, 10);
  EXPECT_EQ(chunks[0].begin, 2);
  EXPECT_EQ(chunks[0].end, 10);
}

TEST(PlanChunks, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_TRUE(plan_chunks(g, 16).empty());
}

TEST(ForEachEdgeChunked, VisitsEveryStoredEdgeOnce) {
  const Graph g = make_suite_graph("kron", 9);
  std::int64_t visited = 0;
  for_each_edge_chunked(g, 16, [&](NodeID, NodeID) {
    fetch_and_add(visited, std::int64_t{1});
  });
  EXPECT_EQ(visited, g.num_stored_edges());
}

TEST(ForEachEdgeChunked, OffsetVisitsSuffixOnly) {
  const Graph g = make_suite_graph("urand", 8);
  std::int64_t visited = 0;
  for_each_edge_chunked(
      g, 16, [&](NodeID, NodeID) { fetch_and_add(visited, std::int64_t{1}); },
      2);
  std::int64_t expected = 0;
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    expected += std::max<std::int64_t>(
        0, g.out_degree(static_cast<NodeID>(v)) - 2);
  EXPECT_EQ(visited, expected);
}

TEST(AfforestBalanced, MatchesReferenceAcrossSuite) {
  for (const auto* name : {"road", "twitter", "web", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    EXPECT_TRUE(labels_equivalent(afforest_balanced(g), union_find_cc(g)))
        << name;
  }
}

TEST(AfforestBalanced, ChunkSizeSweepStaysCorrect) {
  const Graph g = make_suite_graph("twitter", 9);
  const auto truth = union_find_cc(g);
  for (std::int64_t chunk : {1, 7, 64, 4096}) {
    AfforestOptions opts;
    ASSERT_TRUE(labels_equivalent(afforest_balanced(g, opts, chunk), truth))
        << "chunk=" << chunk;
  }
}

TEST(AfforestBalanced, NoSkipVariant) {
  const Graph g = make_suite_graph("kron", 9);
  AfforestOptions opts;
  opts.skip_largest = false;
  EXPECT_TRUE(labels_equivalent(afforest_balanced(g, opts), union_find_cc(g)));
}

TEST(AfforestBalanced, ExtremeHubGraph) {
  const Graph g = hub_graph(5000);
  const auto comp = afforest_balanced(g, {}, 64);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_TRUE(verify_cc(g, comp));
}

}  // namespace
}  // namespace afforest
