#!/usr/bin/env bash
# Perf smoke: run the pinned small-graph suite and compare against the
# checked-in baseline (results/baseline.json).  Exits non-zero when any
# algorithm's anchor-normalized median regresses by more than the
# threshold (see scripts/bench_compare.py and docs/BENCHMARKING.md).
#
# Usage: scripts/perf_smoke.sh [build-dir] [output.json]
#
# The suite is deliberately pinned — fig8a (all algorithms x all suite
# graphs) at scale 16, 15 trials — so candidate runs are comparable
# record-for-record with the baseline.  The OpenMP thread count is read
# from the baseline document itself (host.omp_threads) so the candidate
# always replays the baseline's configuration.  Comparison runs in ratio
# mode (each median divided by serial-uf's median on the same graph),
# which cancels raw machine speed.  Records whose baseline median is
# under 2 ms are skipped as timer noise (back-to-back runs showed >25%
# swings below that), and a failing comparison is retried once with a
# fresh run: only regressions reported by BOTH attempts fail the gate.
# Real regressions reproduce; load-burst noise poisons different
# records each run (observed on a loaded 1-core host, where whole
# 15-trial records swing +-40% while their anchors stay flat).
# Refresh the baseline with scripts/perf_smoke.sh --refresh-baseline
# after an intentional perf change.
set -euo pipefail

cd "$(dirname "$0")/.."

REFRESH=0
if [[ "${1:-}" == "--refresh-baseline" ]]; then
  REFRESH=1
  shift
fi
BUILD_DIR="${1:-build}"
OUT="${2:-${BUILD_DIR}/perf_smoke.json}"
BASELINE="results/baseline.json"

# Pinned suite parameters — change them together with the baseline.
SCALE=16
TRIALS=15
THRESHOLD="${AFFOREST_PERF_THRESHOLD:-0.25}"
MIN_SECONDS="${AFFOREST_PERF_MIN_SECONDS:-2e-3}"

# Serving-layer suite, pinned alongside fig8a.  The gated record is the
# compute-bound steady-state query pass on graph "serve-urand" (own
# serial-uf anchor, so ratio normalization never crosses into the fig8a
# suite); the mixed-phase records land on the anchor-less
# "serve-urand-mixed" graph and are tracked as notes only — their wall
# times are scheduler/core-count-sensitive (see docs/SERVING.md).
SERVE_SCALE=16
SERVE_TRIALS=5
SERVE_BATCH=4096
SERVE_READERS=2
SERVE_READ_FRACTION=0.9
SERVE_SKEW=zipfian
SERVE_STEADY=1048576

# Sharded serving tier, pinned the same way: the gated record is the
# compute-bound steady-state query pass "shard-query-steady" on graph
# "shard-urand" (own serial-uf anchor); the per-shard-count mixed records
# land on the anchor-less "shard-urand-mixed" graph and ride along as
# notes (scheduler-sensitive, like the serve mixed phase).
SHARD_SCALE=16
SHARD_TRIALS=5
SHARD_SWEEP=1,2,4,7
SHARD_READERS=2
SHARD_READ_FRACTION=0.9
SHARD_SKEW=zipfian
SHARD_STEADY=1048576
SHARD_STEADY_SHARDS=4

# Streaming (decremental) suite.  The gated record is the compute-bound
# delete-free pass on graph "stream-urand" (own serial-uf anchor): every
# deletion there is a certified-free non-tree edge, so the bench itself
# exits nonzero — failing this gate — if the rebuild counter moves.  The
# sliding-window records land on the anchor-less "stream-urand-window"
# graph and ride along as notes (rebuild cost depends on window shape).
# --wal-dir adds the durability-tax phase (graph "stream-urand-wal"):
# wal_gate() below bounds the WAL-on/WAL-off ingest median ratio at
# AFFOREST_WAL_OVERHEAD_BOUND (default 1.15, i.e. <15% overhead with
# WalSync::kNone — see docs/ROBUSTNESS.md).  The ratio is intra-run, so
# it holds on any machine without a baseline refresh; like the baseline
# comparator, a breach must reproduce in both attempts to fail the job.
STREAM_SCALE=16
STREAM_TRIALS=5
STREAM_BATCH=4096
STREAM_WINDOW=4
WAL_OVERHEAD_BOUND="${AFFOREST_WAL_OVERHEAD_BOUND:-1.15}"

BIN="${BUILD_DIR}/bench/bench_fig8a_performance"
SERVE_BIN="${BUILD_DIR}/bench/bench_serving"
SHARD_BIN="${BUILD_DIR}/bench/bench_sharded"
STREAM_BIN="${BUILD_DIR}/bench/bench_streaming"
for bin in "$BIN" "$SERVE_BIN" "$SHARD_BIN" "$STREAM_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "perf_smoke: $bin not built (cmake --build $BUILD_DIR --target $(basename "$bin"))" >&2
    exit 2
  fi
done

if [[ "$REFRESH" == 1 ]]; then
  THREADS="${AFFOREST_PERF_THREADS:-2}"
else
  if [[ ! -f "$BASELINE" ]]; then
    echo "perf_smoke: $BASELINE missing (run with --refresh-baseline first)" >&2
    exit 2
  fi
  THREADS="$(python3 -c "
import json, sys
print(json.load(open(sys.argv[1]))['host'].get('omp_threads', 2))
" "$BASELINE")"
fi

run_suite() {
  echo "perf_smoke: running pinned suite (scale=$SCALE trials=$TRIALS threads=$THREADS)"
  OMP_NUM_THREADS="$THREADS" "$BIN" \
    --scale "$SCALE" --trials "$TRIALS" --json "$1.fig8a" >/dev/null
  echo "perf_smoke: running pinned serving mix (scale=$SERVE_SCALE trials=$SERVE_TRIALS skew=$SERVE_SKEW)"
  OMP_NUM_THREADS="$THREADS" "$SERVE_BIN" \
    --scale "$SERVE_SCALE" --trials "$SERVE_TRIALS" \
    --batch-sizes "$SERVE_BATCH" --readers "$SERVE_READERS" \
    --read-fraction "$SERVE_READ_FRACTION" --skew "$SERVE_SKEW" \
    --steady-queries "$SERVE_STEADY" \
    --json "$1.serving" >/dev/null
  echo "perf_smoke: running pinned sharded sweep (scale=$SHARD_SCALE trials=$SHARD_TRIALS shards=$SHARD_SWEEP)"
  # bench_sharded exits nonzero on its own if any reader observes mixed
  # shard epochs or a non-monotone epoch — that correctness gate rides
  # inside the perf gate.
  OMP_NUM_THREADS="$THREADS" "$SHARD_BIN" \
    --scale "$SHARD_SCALE" --trials "$SHARD_TRIALS" \
    --shards "$SHARD_SWEEP" --readers "$SHARD_READERS" \
    --read-fraction "$SHARD_READ_FRACTION" --skew "$SHARD_SKEW" \
    --steady-queries "$SHARD_STEADY" --steady-shards "$SHARD_STEADY_SHARDS" \
    --json "$1.sharded" >/dev/null
  echo "perf_smoke: running pinned streaming suite (scale=$STREAM_SCALE trials=$STREAM_TRIALS window=$STREAM_WINDOW)"
  # bench_streaming exits nonzero on its own if the delete-free pass ever
  # triggers a rebuild — that correctness gate rides inside the perf gate.
  rm -rf "$1.waldir"
  OMP_NUM_THREADS="$THREADS" "$STREAM_BIN" \
    --scale "$STREAM_SCALE" --trials "$STREAM_TRIALS" \
    --batch "$STREAM_BATCH" --window "$STREAM_WINDOW" \
    --wal-dir "$1.waldir" \
    --json "$1.streaming" >/dev/null
  rm -rf "$1.waldir"
  # Merge into one afforest-bench-1 document: host/build metadata from the
  # fig8a run (same binary toolchain), records concatenated.
  python3 - "$1.fig8a" "$1.serving" "$1.sharded" "$1.streaming" "$1" <<'PY'
import json, sys
fig8a = json.load(open(sys.argv[1]))
fig8a["experiment"] = "perf-smoke"
for extra in sys.argv[2:-1]:
    fig8a["records"].extend(json.load(open(extra))["records"])
# Belt and braces: the gated streaming record must prove the delete-free
# pass stayed rebuild-free (the bench also enforces this at runtime).
for rec in fig8a["records"]:
    if rec["algorithm"] == "stream-delete-free":
        rebuilds = rec.get("counters", {}).get("dynamic_rebuilds", 0)
        if rebuilds != 0:
            sys.exit(f"perf_smoke: stream-delete-free record reports "
                     f"{rebuilds} rebuild(s); certification broken")
# Structural check only — the overhead gate itself runs in wal_gate()
# below so it gets the same retry-and-intersect noise treatment as the
# baseline comparator.
medians = {rec["algorithm"]: rec["trials"]["median_s"]
           for rec in fig8a["records"]
           if rec.get("graph") == "stream-urand-wal"}
if "stream-ingest" not in medians or "stream-ingest-wal" not in medians:
    sys.exit("perf_smoke: WAL-overhead records missing from the streaming "
             "run (bench_streaming --wal-dir did not emit them)")
# The gated sharded record must be present and carry the promoted
# communication-volume counters (the simulation-to-live promotion's
# telemetry contract).
sharded = [rec for rec in fig8a["records"]
           if rec["algorithm"] == "shard-query-steady"]
if not sharded:
    sys.exit("perf_smoke: shard-query-steady record missing from the "
             "sharded run")
mixed = [rec for rec in fig8a["records"]
         if rec.get("graph") == "shard-urand-mixed"]
if not all("shard_epoch_publishes" in rec.get("counters", {})
           for rec in mixed):
    sys.exit("perf_smoke: sharded mixed records are missing the "
             "shard_* telemetry counters")
with open(sys.argv[-1], "w") as f:
    json.dump(fig8a, f, indent=1)
    f.write("\n")
PY
  rm -f "$1.fig8a" "$1.serving" "$1.sharded" "$1.streaming"
}

compare() {
  # $1: candidate json, $2: file to receive the comparator's report.
  python3 scripts/bench_compare.py \
    --baseline "$BASELINE" --candidate "$1" \
    --mode ratio --anchor serial-uf \
    --threshold "$THRESHOLD" --min-seconds "$MIN_SECONDS" | tee "$2"
  return "${PIPESTATUS[0]}"
}

# Durability-tax gate: the WAL-on ingest median must stay within
# WAL_OVERHEAD_BOUND of the WAL-off ingest median from the SAME run
# (intra-run ratio — raw machine speed cancels, no baseline needed).
# Like the comparator, a breach only fails the job if it reproduces in
# both attempts: the two records come from interleaved trials, but a
# load burst on a busy host can still land on one side of a single run.
wal_gate() {
  python3 - "$1" "$WAL_OVERHEAD_BOUND" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
med = {r["algorithm"]: r["trials"]["median_s"] for r in doc["records"]
       if r.get("graph") == "stream-urand-wal"}
ratio = med["stream-ingest-wal"] / med["stream-ingest"]
bound = float(sys.argv[2])
print(f"perf_smoke: durable-ingest overhead x{ratio:.3f} "
      f"(bound x{bound:.2f}, wal sync=none)")
sys.exit(0 if ratio <= bound else 1)
PY
}

# A regression line is "REGRESSION <graph>/<algorithm> (<pinned params>):"
# — stable across runs because the suite is pinned — so the set of
# regressed records can be intersected between the two attempts.
regressed_records() {
  grep -E '^REGRESSION ' "$1" | cut -d: -f1 | sort -u || true
}

run_suite "$OUT"
WAL_FAIL1=0
wal_gate "$OUT" || WAL_FAIL1=1

if [[ "$REFRESH" == 1 ]]; then
  # The baseline anchors CI's release binaries: a debug-flavored document
  # (assertions compiled in) would skew every anchor-normalized ratio.
  ASSERTS="$(python3 -c "
import json, sys
print(json.load(open(sys.argv[1]))['build'].get('assertions'))
" "$OUT")"
  if [[ "$ASSERTS" != "False" ]]; then
    echo "perf_smoke: refusing to refresh $BASELINE from an assertions-enabled build" >&2
    echo "perf_smoke: rebuild with CMAKE_BUILD_TYPE=Release (build.assertions must be false)" >&2
    exit 2
  fi
  if [[ "$WAL_FAIL1" == 1 ]]; then
    # The WAL gate is intra-run, so a refresh can't "bake in" a breach —
    # surface it as a warning and let the refresh proceed.
    echo "perf_smoke: warning: durable-ingest overhead above bound in refresh run" >&2
  fi
  mkdir -p "$(dirname "$BASELINE")"
  cp "$OUT" "$BASELINE"
  echo "perf_smoke: baseline refreshed at $BASELINE"
  exit 0
fi

COMPARE_FAIL1=0
compare "$OUT" "$OUT.compare1" || COMPARE_FAIL1=1
if [[ "$COMPARE_FAIL1" == 0 && "$WAL_FAIL1" == 0 ]]; then
  rm -f "$OUT.compare1"
  exit 0
fi
echo "perf_smoke: gate breach reported; retrying once to rule out noise"
run_suite "$OUT"
WAL_FAIL2=0
wal_gate "$OUT" || WAL_FAIL2=1
COMPARE_FAIL2=0
compare "$OUT" "$OUT.compare2" || COMPARE_FAIL2=1
if [[ "$COMPARE_FAIL2" == 0 && "$WAL_FAIL2" == 0 ]]; then
  rm -f "$OUT.compare1" "$OUT.compare2"
  exit 0
fi
# regressed_records of a passing report is empty, so the intersection is
# automatically empty unless the comparator failed in both attempts.
PERSISTENT="$(comm -12 \
  <(regressed_records "$OUT.compare1") \
  <(regressed_records "$OUT.compare2"))"
rm -f "$OUT.compare1" "$OUT.compare2"
FAIL=0
if [[ -n "$PERSISTENT" ]]; then
  echo "perf_smoke: regression(s) reproduced across both attempts:" >&2
  echo "$PERSISTENT" >&2
  FAIL=1
fi
if [[ "$WAL_FAIL1" == 1 && "$WAL_FAIL2" == 1 ]]; then
  echo "perf_smoke: durable-ingest overhead above bound in both attempts" >&2
  FAIL=1
fi
if [[ "$FAIL" == 0 ]]; then
  echo "perf_smoke: no gate breached in both attempts; treating as scheduler noise"
  exit 0
fi
exit 1
