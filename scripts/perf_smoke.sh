#!/usr/bin/env bash
# Perf smoke: run the pinned small-graph suite and compare against the
# checked-in baseline (results/baseline.json).  Exits non-zero when any
# algorithm's anchor-normalized median regresses by more than the
# threshold (see scripts/bench_compare.py and docs/BENCHMARKING.md).
#
# Usage: scripts/perf_smoke.sh [build-dir] [output.json]
#
# The suite is deliberately pinned — fig8a (all algorithms x all suite
# graphs) at scale 16, 15 trials — so candidate runs are comparable
# record-for-record with the baseline.  The OpenMP thread count is read
# from the baseline document itself (host.omp_threads) so the candidate
# always replays the baseline's configuration.  Comparison runs in ratio
# mode (each median divided by serial-uf's median on the same graph),
# which cancels raw machine speed.  Records whose baseline median is
# under 2 ms are skipped as timer noise (back-to-back runs showed >25%
# swings below that), and a failing comparison is retried once with a
# fresh run — real regressions are deterministic, scheduler noise is not.
# Refresh the baseline with scripts/perf_smoke.sh --refresh-baseline
# after an intentional perf change.
set -euo pipefail

cd "$(dirname "$0")/.."

REFRESH=0
if [[ "${1:-}" == "--refresh-baseline" ]]; then
  REFRESH=1
  shift
fi
BUILD_DIR="${1:-build}"
OUT="${2:-${BUILD_DIR}/perf_smoke.json}"
BASELINE="results/baseline.json"

# Pinned suite parameters — change them together with the baseline.
SCALE=16
TRIALS=15
THRESHOLD="${AFFOREST_PERF_THRESHOLD:-0.25}"
MIN_SECONDS="${AFFOREST_PERF_MIN_SECONDS:-2e-3}"

BIN="${BUILD_DIR}/bench/bench_fig8a_performance"
if [[ ! -x "$BIN" ]]; then
  echo "perf_smoke: $BIN not built (cmake --build $BUILD_DIR --target bench_fig8a_performance)" >&2
  exit 2
fi

if [[ "$REFRESH" == 1 ]]; then
  THREADS="${AFFOREST_PERF_THREADS:-2}"
else
  if [[ ! -f "$BASELINE" ]]; then
    echo "perf_smoke: $BASELINE missing (run with --refresh-baseline first)" >&2
    exit 2
  fi
  THREADS="$(python3 -c "
import json, sys
print(json.load(open(sys.argv[1]))['host'].get('omp_threads', 2))
" "$BASELINE")"
fi

run_suite() {
  echo "perf_smoke: running pinned suite (scale=$SCALE trials=$TRIALS threads=$THREADS)"
  OMP_NUM_THREADS="$THREADS" "$BIN" \
    --scale "$SCALE" --trials "$TRIALS" --json "$1" >/dev/null
}

compare() {
  python3 scripts/bench_compare.py \
    --baseline "$BASELINE" --candidate "$1" \
    --mode ratio --anchor serial-uf \
    --threshold "$THRESHOLD" --min-seconds "$MIN_SECONDS"
}

run_suite "$OUT"

if [[ "$REFRESH" == 1 ]]; then
  # The baseline anchors CI's release binaries: a debug-flavored document
  # (assertions compiled in) would skew every anchor-normalized ratio.
  ASSERTS="$(python3 -c "
import json, sys
print(json.load(open(sys.argv[1]))['build'].get('assertions'))
" "$OUT")"
  if [[ "$ASSERTS" != "False" ]]; then
    echo "perf_smoke: refusing to refresh $BASELINE from an assertions-enabled build" >&2
    echo "perf_smoke: rebuild with CMAKE_BUILD_TYPE=Release (build.assertions must be false)" >&2
    exit 2
  fi
  mkdir -p "$(dirname "$BASELINE")"
  cp "$OUT" "$BASELINE"
  echo "perf_smoke: baseline refreshed at $BASELINE"
  exit 0
fi

if compare "$OUT"; then
  exit 0
fi
echo "perf_smoke: regression reported; retrying once to rule out noise"
run_suite "$OUT"
compare "$OUT"
