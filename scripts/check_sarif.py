#!/usr/bin/env python3
"""Validates afforest-lint's --sarif output (the lint_sarif_schema ctest).

Stdlib-only schema subset check against SARIF 2.1.0 — the container has
no jsonschema package, so this pins exactly the invariants CI annotation
consumes:

  * version == "2.1.0", a $schema URI, exactly one run
  * tool.driver.name == "afforest-lint" with a version and a rules array
    covering every --list-codes diagnostic code
  * every result: ruleId present in driver.rules, level "error", a
    message.text, and one physical location with a uri and startLine >= 1

Drives the real CLI twice: a bad corpus fixture must exit 1 with a
non-empty results array whose lines match the fixture's BAD markers, and
a good fixture must exit 0 with an empty results array.

Usage: check_sarif.py <repo-root>
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

_BAD_RE = re.compile(r"BAD\(([a-z*-]+)\)")


def fail(message: str) -> None:
    print(f"check_sarif: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_lint(repo: str, fixture: str, sarif_path: str) -> int:
    proc = subprocess.run(
        [sys.executable, os.path.join(repo, "tools", "afforest-lint"),
         "--quiet", "--sarif", sarif_path, fixture],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    if proc.returncode == 2:
        fail(f"internal error linting {fixture}:\n{proc.stderr}")
    return proc.returncode


def load(sarif_path: str) -> dict:
    with open(sarif_path, encoding="utf-8") as f:
        return json.load(f)


def validate_document(doc: dict) -> tuple[dict, list[dict]]:
    """Checks the run-level invariants; returns (driver, results)."""
    if doc.get("version") != "2.1.0":
        fail(f"version is {doc.get('version')!r}, want '2.1.0'")
    if not str(doc.get("$schema", "")).startswith("http"):
        fail("$schema is missing or not a URI")
    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("runs must be a list with exactly one run")
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "afforest-lint":
        fail(f"driver name is {driver.get('name')!r}")
    if not driver.get("version"):
        fail("driver has no version")
    rules = driver.get("rules")
    if not isinstance(rules, list) or not rules:
        fail("driver.rules is missing or empty")
    for rule in rules:
        if not rule.get("id") or not rule.get("shortDescription", {}).get(
            "text"
        ):
            fail(f"rule {rule!r} lacks id or shortDescription.text")
    results = run.get("results")
    if not isinstance(results, list):
        fail("run.results must be a list")
    rule_ids = {rule["id"] for rule in rules}
    for result in results:
        if result.get("ruleId") not in rule_ids:
            fail(f"result ruleId {result.get('ruleId')!r} not in "
                 f"driver.rules")
        if result.get("level") != "error":
            fail(f"result level {result.get('level')!r}, want 'error'")
        if not result.get("message", {}).get("text"):
            fail("result has no message.text")
        locations = result.get("locations")
        if not isinstance(locations, list) or len(locations) != 1:
            fail("result must carry exactly one location")
        physical = locations[0].get("physicalLocation", {})
        if not physical.get("artifactLocation", {}).get("uri"):
            fail("result location has no artifactLocation.uri")
        start_line = physical.get("region", {}).get("startLine")
        if not isinstance(start_line, int) or start_line < 1:
            fail(f"result startLine {start_line!r} must be an int >= 1")
    return driver, results


def expected_markers(fixture: str) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    with open(fixture, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for m in _BAD_RE.finditer(line):
                expected.add((lineno, m.group(1)))
    return expected


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo = sys.argv[1]
    corpus = os.path.join(repo, "tests", "lint", "corpus")
    bad_fixture = os.path.join(corpus, "bad_serve_durability_order.hpp")
    good_fixture = os.path.join(corpus, "good_serve_durability_order.hpp")

    with tempfile.TemporaryDirectory(prefix="afforest-sarif-") as tmp:
        # A dirty fixture: exit 1, results match its BAD markers exactly.
        bad_sarif = os.path.join(tmp, "bad.sarif")
        code = run_lint(repo, bad_fixture, bad_sarif)
        if code != 1:
            fail(f"bad fixture exited {code}, want 1")
        driver, results = validate_document(load(bad_sarif))
        if not results:
            fail("bad fixture produced an empty results array")
        got = {
            (r["locations"][0]["physicalLocation"]["region"]["startLine"],
             r["ruleId"])
            for r in results
        }
        want = expected_markers(bad_fixture)
        if got != want:
            fail(f"results {sorted(got)} != BAD markers {sorted(want)}")

        # --list-codes and driver.rules must agree (CI renders rule help
        # from the SARIF document alone).
        proc = subprocess.run(
            [sys.executable, os.path.join(repo, "tools", "afforest-lint"),
             "--list-codes"],
            stdout=subprocess.PIPE, text=True, check=True,
        )
        listed = {line.split(":", 1)[0] for line in
                  proc.stdout.splitlines() if ":" in line}
        rule_ids = {rule["id"] for rule in driver["rules"]}
        if listed != rule_ids:
            fail(f"--list-codes {sorted(listed)} != driver.rules "
                 f"{sorted(rule_ids)}")

        # A clean fixture: exit 0, document still valid, results empty.
        good_sarif = os.path.join(tmp, "good.sarif")
        code = run_lint(repo, good_fixture, good_sarif)
        if code != 0:
            fail(f"good fixture exited {code}, want 0")
        _, results = validate_document(load(good_sarif))
        if results:
            fail(f"good fixture produced {len(results)} result(s), want 0")

    print("check_sarif: PASS (document valid, results match BAD markers, "
          "rules cover --list-codes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
