#!/usr/bin/env bash
# Line-coverage report for the test suites (tentpole PR 5 satellite).
#
# Builds the `coverage` preset (gcc --coverage, -O0), runs ctest there, then
# aggregates every .gcda through `gcov --json-format` into a per-directory
# line-coverage summary for the library sources.  Template-heavy headers are
# covered through their including TUs, so src/cc and src/serve header lines
# are attributed correctly.
#
# Floors (documented in docs/TESTING.md): src/cc >= 80%, src/serve >= 85%
# line coverage, plus per-file floors (85%) on src/serve/dynamic_cc.hpp,
# src/serve/wal.hpp, and src/serve/checkpoint.hpp so the decremental and
# durability paths can't silently fall out of the serve bucket's
# average.  The script exits 1 when a floor is broken; the CI job that
# runs it is non-blocking (continue-on-error) and uploads the summary as an
# artifact, so the floor is a tracked signal, not a merge gate.
#
# Usage: scripts/coverage.sh [--fast] [build-dir]
#   --fast   run only the cc/serve-focused test binaries (quick local loop)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi
BUILD_DIR="${1:-build-coverage}"
SUMMARY="${BUILD_DIR}/coverage_summary.txt"

GCOV_BIN="${GCOV:-gcov}"
if ! command -v "$GCOV_BIN" >/dev/null; then
  echo "coverage: $GCOV_BIN not found" >&2
  exit 2
fi

if [[ "$BUILD_DIR" == "build-coverage" ]]; then
  cmake --preset coverage >/dev/null
  cmake --build --preset coverage -j "$(nproc)"
else
  cmake -B "$BUILD_DIR" -S . -DAFFOREST_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)"
fi

# Fresh counters: stale .gcda from previous runs would double-count.
find "$BUILD_DIR" -name '*.gcda' -delete

echo "coverage: running tests in $BUILD_DIR"
if [[ "$FAST" == 1 ]]; then
  (cd "$BUILD_DIR" && ctest --output-on-failure -R 'QueryEngine|Serve|Shard|Incremental|Afforest|LinkCompress|UnionFind|Dynamic' >/dev/null)
else
  (cd "$BUILD_DIR" && ctest --output-on-failure >/dev/null)
fi

echo "coverage: aggregating gcov data"
GCOV="$GCOV_BIN" BUILD_DIR="$BUILD_DIR" SUMMARY="$SUMMARY" python3 - <<'PY'
import json
import os
import subprocess
import sys
from collections import defaultdict

build_dir = os.environ["BUILD_DIR"]
gcov = os.environ["GCOV"]
summary_path = os.environ["SUMMARY"]
repo = os.getcwd()

gcda = []
for root, _dirs, files in os.walk(build_dir):
    gcda.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
if not gcda:
    sys.exit("coverage: no .gcda files found — did the tests run?")

# file -> line -> hit count (max across TUs: a line is covered if ANY
# instantiation executed it).
lines = defaultdict(dict)
for path in gcda:
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", os.path.abspath(path)],
        cwd=build_dir, capture_output=True, text=True)
    if proc.returncode != 0:
        continue
    # One JSON document per input file; tolerate stray lines.
    for chunk in proc.stdout.splitlines():
        chunk = chunk.strip()
        if not chunk.startswith("{"):
            continue
        try:
            doc = json.loads(chunk)
        except json.JSONDecodeError:
            continue
        for f in doc.get("files", []):
            src = os.path.normpath(os.path.join(build_dir, f["file"]))
            if not os.path.isabs(f["file"]):
                src = os.path.normpath(os.path.join(repo, build_dir, f["file"]))
            src = os.path.realpath(src)
            if not src.startswith(os.path.realpath(repo) + os.sep):
                continue
            rel = os.path.relpath(src, repo)
            if not (rel.startswith("src/") or rel.startswith("bench/")
                    or rel.startswith("apps/")):
                continue
            cur = lines[rel]
            for ln in f.get("lines", []):
                n = ln["line_number"]
                cur[n] = max(cur.get(n, 0), ln["count"])

def bucket(rel):
    parts = rel.split(os.sep)
    return os.sep.join(parts[:2]) if parts[0] == "src" else parts[0]

per_dir = defaultdict(lambda: [0, 0])  # bucket -> [covered, total]
per_file = {}
for rel, cov in sorted(lines.items()):
    covered = sum(1 for c in cov.values() if c > 0)
    total = len(cov)
    per_file[rel] = (covered, total)
    b = bucket(rel)
    per_dir[b][0] += covered
    per_dir[b][1] += total

FLOORS = {"src/cc": 80.0, "src/serve": 85.0, "src/shard": 85.0}
# Per-file floors: files whose coverage must hold on their own, not just
# inside their directory bucket's average.  wal.hpp and checkpoint.hpp
# carry the durability contract (docs/ROBUSTNESS.md), so their error
# paths must stay individually exercised by the crash-sweep + fuzzers.
FILE_FLOORS = {
    "src/serve/dynamic_cc.hpp": 85.0,
    "src/serve/wal.hpp": 85.0,
    "src/serve/checkpoint.hpp": 85.0,
}

out = []
out.append(f"{'directory':<16} {'covered':>8} {'total':>8} {'line %':>8}")
out.append("-" * 44)
failures = []
for b in sorted(per_dir):
    covered, total = per_dir[b]
    pct = 100.0 * covered / total if total else 0.0
    flag = ""
    floor = FLOORS.get(b)
    if floor is not None:
        flag = "  (floor %.0f%%)" % floor
        if pct < floor:
            flag += "  BELOW FLOOR"
            failures.append((b, pct, floor))
    out.append(f"{b:<16} {covered:>8} {total:>8} {pct:>7.1f}%{flag}")

out.append("")
out.append("per-file (src/cc and src/serve):")
for rel, (covered, total) in sorted(per_file.items()):
    if rel.startswith(("src/cc/", "src/serve/")):
        pct = 100.0 * covered / total if total else 0.0
        flag = ""
        floor = FILE_FLOORS.get(rel)
        if floor is not None:
            flag = "  (floor %.0f%%)" % floor
            if pct < floor:
                flag += "  BELOW FLOOR"
                failures.append((rel, pct, floor))
        out.append(f"  {rel:<44} {covered:>6}/{total:<6} {pct:>6.1f}%{flag}")
for rel, floor in sorted(FILE_FLOORS.items()):
    if rel not in per_file:
        out.append(f"  {rel:<44} MISSING from coverage data  BELOW FLOOR")
        failures.append((rel, 0.0, floor))

report = "\n".join(out)
print(report)
with open(summary_path, "w", encoding="utf-8") as f:
    f.write(report + "\n")
print(f"\ncoverage: summary written to {summary_path}")

if failures:
    for b, pct, floor in failures:
        print(f"coverage: {b} at {pct:.1f}% is below its {floor:.0f}% floor",
              file=sys.stderr)
    sys.exit(1)
PY
