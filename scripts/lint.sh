#!/usr/bin/env bash
# Static-analysis gate: afforest-lint (always), then clang-tidy and cppcheck
# when installed.  The dev container ships no clang frontend, so the two
# external tools are skipped locally with a notice; CI sets
# LINT_REQUIRE_TOOLS=1, which turns a missing tool into a hard failure so
# the blocking `lint` job can never silently degrade.
#
# Usage: scripts/lint.sh            (from anywhere; cd's to the repo root)
#   BUILD_DIR=build-release         build tree with compile_commands.json
#                                   (auto-detected when unset)
#   LINT_REQUIRE_TOOLS=1            fail instead of skip when clang-tidy or
#                                   cppcheck is unavailable
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHON=${PYTHON:-python3}
LINT_REQUIRE_TOOLS=${LINT_REQUIRE_TOOLS:-0}

BUILD_DIR=${BUILD_DIR:-}
if [[ -z "${BUILD_DIR}" ]]; then
  for d in build-release build build-asan build-tsan; do
    if [[ -f "${d}/compile_commands.json" ]]; then
      BUILD_DIR="${d}"
      break
    fi
  done
fi

echo "== afforest-lint: fixture corpus selftest =="
"${PYTHON}" tools/afforest-lint --selftest tests/lint/corpus

echo "== afforest-lint: src/ apps/ bench/ tools/ =="
"${PYTHON}" tools/afforest-lint ${BUILD_DIR:+--build-dir "${BUILD_DIR}"} \
  src apps bench tools

missing_tool() {
  if [[ "${LINT_REQUIRE_TOOLS}" == "1" ]]; then
    echo "lint.sh: $1 is required (LINT_REQUIRE_TOOLS=1) but not installed" >&2
    exit 1
  fi
  echo "lint.sh: $1 not installed; skipping (CI runs it)" >&2
}

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -n "${BUILD_DIR}" ]]; then
    echo "== clang-tidy (config: .clang-tidy) =="
    # Translation units only; headers are covered via HeaderFilterRegex.
    mapfile -t tus < <(git ls-files 'src/**/*.cpp' 'src/*.cpp' 'apps/*.cpp')
    clang-tidy --quiet -p "${BUILD_DIR}" "${tus[@]}"
  else
    echo "lint.sh: no compile_commands.json found; configure a preset first" >&2
    [[ "${LINT_REQUIRE_TOOLS}" == "1" ]] && exit 1
  fi
else
  missing_tool clang-tidy
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --enable=warning,performance,portability --std=c++20 \
    --language=c++ --error-exitcode=1 --inline-suppr --quiet \
    --suppressions-list=.cppcheck-suppressions \
    -I src src apps
else
  missing_tool cppcheck
fi

echo "lint.sh: all enabled analyses passed"
