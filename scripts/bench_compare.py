#!/usr/bin/env python3
"""Compare two afforest-bench-1 JSON documents and flag median regressions.

Used by the perf-smoke CI job (see .github/workflows/ci.yml and
docs/BENCHMARKING.md): a candidate run is diffed against the checked-in
results/baseline.json and the job fails when any matched record's median
regresses past the threshold.

Matching: records pair up by (graph, algorithm, params); records that only
exist on one side are reported but are not failures (suite drift is handled
by refreshing the baseline, not by failing every PR).  Records without
timing data (trials.count == 0, used by metric-only experiments) are
ignored.

Modes:
  absolute  compare raw medians.  Right when baseline and candidate ran on
            the same machine (e.g. A/B of one commit locally).
  ratio     divide each record's median by the median of the anchor
            algorithm on the same graph within the same document, then
            compare the ratios.  This cancels machine speed, so a baseline
            recorded on one host remains meaningful on another — the mode
            the CI job uses.

Exit codes: 0 = no regression, 1 = regression found, 2 = usage/data error.
"""

import argparse
import json
import math
import sys

SCHEMA = "afforest-bench-1"


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"bench_compare: {path}: unexpected schema "
            f"{doc.get('schema')!r} (want {SCHEMA!r})")
    if not isinstance(doc.get("records"), list):
        raise SystemExit(f"bench_compare: {path}: missing records[]")
    return doc


def record_key(rec):
    params = rec.get("params", {})
    return (
        rec.get("graph", ""),
        rec.get("algorithm", ""),
        tuple(sorted((k, json.dumps(v)) for k, v in params.items())),
    )


def timed_records(doc):
    """key -> median seconds, for records that carry real timing data."""
    out = {}
    for rec in doc["records"]:
        trials = rec.get("trials", {})
        if trials.get("count", 0) <= 0:
            continue
        median = trials.get("median_s", 0.0)
        if not isinstance(median, (int, float)) or median <= 0.0:
            continue
        out[record_key(rec)] = float(median)
    return out


def anchor_medians(doc, anchor):
    """graph -> anchor algorithm's median within this document."""
    out = {}
    for rec in doc["records"]:
        if rec.get("algorithm") != anchor:
            continue
        trials = rec.get("trials", {})
        if trials.get("count", 0) <= 0:
            continue
        median = trials.get("median_s", 0.0)
        if isinstance(median, (int, float)) and median > 0.0:
            # Parameter sweeps may time the anchor more than once per
            # graph; pick the minimum median so the choice is a
            # deterministic function of the records rather than of
            # document order (first-seen could pair baseline and
            # candidate anchors from different configurations).
            graph = rec.get("graph", "")
            prev = out.get(graph)
            if prev is None or float(median) < prev:
                out[graph] = float(median)
    return out


def normalize(medians, anchors):
    out = {}
    for key, median in medians.items():
        graph = key[0]
        anchor = anchors.get(graph)
        if anchor is None or anchor <= 0.0:
            continue
        out[key] = median / anchor
    return out


def describe_key(key):
    graph, algorithm, params = key
    if params:
        plist = ", ".join(f"{k}={v}" for k, v in params)
        return f"{graph}/{algorithm} ({plist})"
    return f"{graph}/{algorithm}"


def compare(baseline, candidate, threshold, min_seconds, baseline_raw=None):
    """Returns (regressions, improvements, missing, added) lists."""
    regressions, improvements = [], []
    missing = [k for k in baseline if k not in candidate]
    added = [k for k in candidate if k not in baseline]
    for key, base in baseline.items():
        cand = candidate.get(key)
        if cand is None:
            continue
        # Sub-millisecond medians are timer noise at smoke scales; judge
        # them by the raw baseline time even in ratio mode.
        raw = (baseline_raw or {}).get(key, base)
        if raw < min_seconds:
            continue
        if base <= 0.0 or not math.isfinite(cand / base):
            continue
        change = cand / base - 1.0
        if change > threshold:
            regressions.append((key, base, cand, change))
        elif change < -threshold:
            improvements.append((key, base, cand, change))
    regressions.sort(key=lambda r: -r[3])
    improvements.sort(key=lambda r: r[3])
    return regressions, improvements, missing, added


def run_compare(args):
    base_doc = load_doc(args.baseline)
    cand_doc = load_doc(args.candidate)
    base_raw = timed_records(base_doc)
    cand_raw = timed_records(cand_doc)
    if not base_raw:
        raise SystemExit(
            f"bench_compare: {args.baseline} has no timed records")
    if not cand_raw:
        raise SystemExit(
            f"bench_compare: {args.candidate} has no timed records")

    if args.mode == "ratio":
        base_anchor = anchor_medians(base_doc, args.anchor)
        cand_anchor = anchor_medians(cand_doc, args.anchor)
        if not base_anchor or not cand_anchor:
            raise SystemExit(
                f"bench_compare: anchor algorithm {args.anchor!r} absent "
                "from one of the documents (needed for --mode ratio)")
        base = normalize(base_raw, base_anchor)
        cand = normalize(cand_raw, cand_anchor)
    else:
        base, cand = base_raw, cand_raw

    regressions, improvements, missing, added = compare(
        base, cand, args.threshold, args.min_seconds, baseline_raw=base_raw)

    unit = "x-vs-anchor" if args.mode == "ratio" else "s"
    for key, b, c, change in regressions:
        print(f"REGRESSION {describe_key(key)}: {b:.6g}{unit} -> "
              f"{c:.6g}{unit} (+{100 * change:.1f}%)")
    for key, b, c, change in improvements:
        print(f"improvement {describe_key(key)}: {b:.6g}{unit} -> "
              f"{c:.6g}{unit} ({100 * change:.1f}%)")
    for key in missing:
        print(f"note: baseline-only record {describe_key(key)}")
    for key in added:
        print(f"note: candidate-only record {describe_key(key)}")
    print(f"compared {sum(1 for k in base if k in cand)} record(s), "
          f"{len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s) "
          f"[mode={args.mode}, threshold={100 * args.threshold:.0f}%]")
    return 1 if regressions else 0


# ---------------------------------------------------------------------------
# Self-test: synthetic documents through the full pipeline.


def _doc(records):
    return {"schema": SCHEMA, "experiment": "selftest",
            "host": {}, "build": {}, "records": records}


def _rec(graph, algo, median, count=3, params=None):
    return {
        "graph": graph, "algorithm": algo, "params": params or {},
        "trials": {"median_s": median, "p25_s": median, "p75_s": median,
                   "min_s": median, "max_s": median, "count": count},
    }


def self_test():
    failures = []

    def check(name, cond):
        print(("PASS " if cond else "FAIL ") + name)
        if not cond:
            failures.append(name)

    base = _doc([
        _rec("kron", "afforest", 0.10),
        _rec("kron", "sv", 0.50),
        _rec("kron", "serial-uf", 0.20),
        _rec("road", "afforest", 0.30),
        _rec("road", "serial-uf", 0.30),
        _rec("road", "stats-only", 0.0, count=0),
    ])

    # Identical documents: no regression in either mode.
    b = timed_records(base)
    check("identity/absolute",
          compare(b, b, 0.25, 0.0)[0] == [])
    nb = normalize(b, anchor_medians(base, "serial-uf"))
    check("identity/ratio", compare(nb, nb, 0.25, 0.0)[0] == [])
    check("metric-only records ignored",
          all(k[1] != "stats-only" for k in b))

    # Injected 2x slowdown on one algorithm: caught in both modes.
    slow = _doc([
        _rec("kron", "afforest", 0.20),
        _rec("kron", "sv", 0.50),
        _rec("kron", "serial-uf", 0.20),
        _rec("road", "afforest", 0.30),
        _rec("road", "serial-uf", 0.30),
    ])
    s = timed_records(slow)
    reg_abs = compare(b, s, 0.25, 0.0)[0]
    check("2x slowdown caught (absolute)",
          [r[0][:2] for r in reg_abs] == [("kron", "afforest")])
    ns = normalize(s, anchor_medians(slow, "serial-uf"))
    reg_ratio = compare(nb, ns, 0.25, 0.0)[0]
    check("2x slowdown caught (ratio)",
          [r[0][:2] for r in reg_ratio] == [("kron", "afforest")])

    # A uniformly 2x slower machine: absolute mode screams, ratio is quiet.
    half = _doc([_rec(r["graph"], r["algorithm"],
                      r["trials"]["median_s"] * 2.0)
                 for r in base["records"] if r["trials"]["count"] > 0])
    h = timed_records(half)
    check("slow machine trips absolute", len(compare(b, h, 0.25, 0.0)[0]) > 0)
    nh = normalize(h, anchor_medians(half, "serial-uf"))
    check("slow machine quiet in ratio", compare(nb, nh, 0.25, 0.0)[0] == [])

    # min-seconds floor suppresses noise-scale records.
    tiny_b = {("g", "a", ()): 1e-5}
    tiny_c = {("g", "a", ()): 5e-5}
    check("min-seconds floor",
          compare(tiny_b, tiny_c, 0.25, 1e-3)[0] == [])

    # Params participate in matching.
    pb = timed_records(_doc([_rec("g", "a", 0.1, params={"threads": 1})]))
    pc = timed_records(_doc([_rec("g", "a", 0.9, params={"threads": 2})]))
    check("params split records", compare(pb, pc, 0.25, 0.0)[0] == [])

    # Multiple anchor records per graph: the pick is the minimum median,
    # independent of document order, so baseline and candidate always
    # normalize against the same anchor configuration.
    dup_a = _doc([_rec("g", "serial-uf", 0.4, params={"threads": 1}),
                  _rec("g", "serial-uf", 0.2, params={"threads": 2})])
    dup_b = _doc([_rec("g", "serial-uf", 0.2, params={"threads": 2}),
                  _rec("g", "serial-uf", 0.4, params={"threads": 1})])
    check("anchor pick order-independent",
          anchor_medians(dup_a, "serial-uf")
          == anchor_medians(dup_b, "serial-uf") == {"g": 0.2})

    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="baseline afforest-bench-1 JSON")
    parser.add_argument("--candidate", help="candidate afforest-bench-1 JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative median regression that fails the "
                             "comparison (default 0.25 = 25%%)")
    parser.add_argument("--mode", choices=("absolute", "ratio"),
                        default="absolute",
                        help="absolute medians or anchor-normalized ratios")
    parser.add_argument("--anchor", default="serial-uf",
                        help="anchor algorithm for --mode ratio "
                             "(default serial-uf)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="ignore records whose baseline median is below "
                             "this many seconds (timer noise; default 1e-3)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required "
                     "(or use --self-test)")
    return run_compare(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as e:
        if isinstance(e.code, str):
            print(e.code, file=sys.stderr)
            sys.exit(2)
        raise
