#!/usr/bin/env bash
# Regenerates every paper table/figure into results/ and the raw logs the
# repository's EXPERIMENTS.md cites.  Usage:
#   scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR=${1:-build}
RESULTS_DIR=${2:-results}

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/bench_*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name=$(basename "$bench")
  echo "== $name"
  # Every binary also mirrors its records into machine-readable JSON
  # (schema afforest-bench-1, see docs/BENCHMARKING.md).
  "$bench" --json "$RESULTS_DIR/$name.json" | tee "$RESULTS_DIR/$name.txt"
  echo
done
echo "all experiment outputs written to $RESULTS_DIR/ (text + JSON)"
