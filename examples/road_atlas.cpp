// Road-atlas reachability: build a road-network-class graph (high
// diameter, average degree ~2), compute components once with Afforest,
// then answer "can I drive from A to B?" queries in O(1) by comparing
// labels — the canonical downstream use of CC as a preprocessing step.
#include <iostream>

#include "cc/afforest.hpp"
#include "cc/component_stats.hpp"
#include "graph/builder.hpp"
#include "graph/generators/road.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("side", "road grid side length (default 512)");
  cl.describe("keep-prob", "probability each road segment exists (default 0.55)");
  cl.describe("queries", "number of reachability queries (default 10)");
  if (cl.help_requested()) {
    cl.print_help("reachability queries over a road network via CC labels");
    return 0;
  }
  const auto side = cl.get_int("side", 512);
  const double keep = cl.get_double("keep-prob", 0.55);
  const auto queries = cl.get_int("queries", 10);

  std::cout << "Building a " << side << "x" << side
            << " road network (keep_prob=" << keep << ")...\n";
  const Graph g = build_undirected(
      generate_road_edges<std::int32_t>(side, side, 99,
                                        {.keep_prob = keep,
                                         .shortcut_per_node = 0.0}),
      side * side);
  std::cout << format_degree_stats(compute_degree_stats(g)) << '\n';
  std::cout << "approx diameter: " << approximate_diameter(g) << "\n\n";

  Timer t;
  t.start();
  const auto comp = afforest_cc(g);
  t.stop();
  const auto s = summarize_components(comp);
  std::cout << "Afforest: " << t.millisecs() << " ms, " << s.num_components
            << " disconnected regions, largest covers "
            << 100.0 * s.largest_fraction << "% of intersections\n\n";

  // O(1) reachability queries.
  Xoshiro256 rng(4);
  std::cout << "sample reachability queries:\n";
  for (std::int64_t q = 0; q < queries; ++q) {
    const auto a = static_cast<std::int32_t>(
        rng.next_bounded(static_cast<std::uint64_t>(g.num_nodes())));
    const auto b = static_cast<std::int32_t>(
        rng.next_bounded(static_cast<std::uint64_t>(g.num_nodes())));
    std::cout << "  " << a << " -> " << b << ": "
              << (comp[a] == comp[b] ? "reachable" : "NOT reachable") << '\n';
  }
  return 0;
}
