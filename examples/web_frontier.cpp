// Web-crawl frontier analysis: build a hyperlink-class graph, extract a
// spanning forest (the §IV-A dual problem), and show how neighbor sampling
// converges — a guided tour of the analysis API on the paper's hardest
// convergence case.
#include <iostream>

#include "analysis/convergence.hpp"
#include "cc/afforest_forest.hpp"
#include "cc/component_stats.hpp"
#include "cc/spanning_forest.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/webgraph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of page count (default 14)");
  if (cl.help_requested()) {
    cl.print_help("spanning forest + convergence analysis of a web graph");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const std::int64_t n = std::int64_t{1} << scale;

  std::cout << "Crawling a synthetic web of " << n << " pages...\n";
  const Graph g =
      build_undirected(generate_web_edges<std::int32_t>(n, 7), n);
  const auto truth = union_find_cc(g);
  const auto s = summarize_components(truth);
  std::cout << "E=" << g.num_edges() << " components=" << s.num_components
            << " giant=" << 100.0 * s.largest_fraction << "%\n\n";

  // Spanning forest: the minimal edge set that preserves connectivity.
  // Extracted in parallel via Afforest's merge witnesses (§IV-A duality).
  const auto result = afforest_spanning_forest(g);
  const auto& forest = result.forest;
  std::cout << "spanning forest: " << forest.size() << " of " << g.num_edges()
            << " edges ("
            << 100.0 * static_cast<double>(forest.size()) /
                   static_cast<double>(g.num_edges())
            << "%) suffice for connectivity\n";
  std::cout << "valid: " << (is_spanning_forest(g, forest) ? "yes" : "no")
            << "\n\n";

  // How fast does each sampling strategy approach that optimum?
  std::cout << "linkage after the first ~10% of edges, by strategy:\n";
  TextTable table({"strategy", "% edges", "linkage", "coverage"});
  for (auto strat :
       {PartitionStrategy::kRowPartition, PartitionStrategy::kRandomEdges,
        PartitionStrategy::kNeighborRounds, PartitionStrategy::kOptimalSF}) {
    const auto pts = measure_convergence(g, {.strategy = strat});
    // First point at or past 10% processed.
    for (const auto& p : pts) {
      if (p.pct_edges_processed >= 10.0 || &p == &pts.back()) {
        table.add_row({to_string(strat),
                       TextTable::fmt(p.pct_edges_processed, 1),
                       TextTable::fmt(p.linkage, 3),
                       TextTable::fmt(p.coverage, 3)});
        break;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nneighbor sampling approaches the spanning-forest optimum "
               "(paper Fig 6).\n";
  return 0;
}
