// Streaming connectivity: edges arrive in batches (a growing social graph,
// a link-discovery crawl); between batches the application asks
// connectivity questions.  IncrementalCC reuses Afforest's lock-free
// primitives so insertion batches can run fully parallel — the §III-B
// any-order property applied online.
#include <iostream>

#include "cc/incremental.hpp"
#include "graph/generators/uniform.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 16)");
  cl.describe("batches", "number of edge batches (default 10)");
  if (cl.help_requested()) {
    cl.print_help("streaming edge insertions with interleaved queries");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 16));
  const auto num_batches = cl.get_int("batches", 10);

  const std::int64_t n = std::int64_t{1} << scale;
  // The full edge stream, revealed batch by batch.
  const auto stream = generate_uniform_edges<std::int32_t>(n, 4 * n, 31);
  const std::int64_t batch_size =
      static_cast<std::int64_t>(stream.size()) / num_batches;

  IncrementalCC<std::int32_t> cc(n);
  std::cout << "streaming " << stream.size() << " edges over " << num_batches
            << " batches into a " << n << "-vertex graph\n\n";

  TextTable table({"batch", "edges so far", "components", "insert ms",
                   "0~n/2 connected?"});
  for (std::int64_t b = 0; b < num_batches; ++b) {
    const std::int64_t begin = b * batch_size;
    const std::int64_t end = (b + 1 == num_batches)
                                 ? static_cast<std::int64_t>(stream.size())
                                 : (b + 1) * batch_size;
    Timer t;
    t.start();
#pragma omp parallel for schedule(static)
    for (std::int64_t i = begin; i < end; ++i)
      cc.add_edge(stream[i].u, stream[i].v);
    t.stop();
    cc.compact();
    table.add_row({TextTable::fmt_int(b + 1), TextTable::fmt_int(end),
                   TextTable::fmt_int(cc.component_count()),
                   TextTable::fmt(t.millisecs(), 2),
                   cc.connected(0, static_cast<std::int32_t>(n / 2)) ? "yes"
                                                                      : "no"});
  }
  table.print(std::cout);
  std::cout << "\nthe component count collapses toward 1 as the random graph "
               "passes its connectivity threshold.\n";
  return 0;
}
