// Quickstart: build a graph from an edge list, run Afforest, inspect the
// components.  The 30-second tour of the public API.
#include <iostream>

#include "cc/afforest.hpp"
#include "cc/component_stats.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace afforest;

  // A small social circle: two friend groups and a loner (vertex 8).
  EdgeList<std::int32_t> edges{
      {0, 1}, {1, 2}, {2, 0},          // group A: 0-1-2 triangle
      {3, 4}, {4, 5}, {5, 6}, {6, 3},  // group B: 3-4-5-6 cycle
      {2, 7},                          // 7 hangs off group A
  };
  const Graph g = build_undirected(edges, /*num_nodes=*/9);

  // One call computes connected components.  Labels are the minimum vertex
  // id of each component.
  const auto comp = afforest_cc(g);

  std::cout << "vertex -> component\n";
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    std::cout << "  " << v << " -> " << comp[v] << '\n';

  const auto summary = summarize_components(comp);
  std::cout << "components: " << summary.num_components
            << ", largest: " << summary.largest_size << " vertices"
            << ", singletons: " << summary.num_singletons << '\n';

  // Every algorithm's output can be validated against a serial reference.
  std::cout << "verified: " << (verify_cc(g, comp) ? "yes" : "no") << '\n';
  return 0;
}
