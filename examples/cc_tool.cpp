// cc_tool: command-line connected components over graph files — the
// utility a downstream user runs on their own data.
//
//   cc_tool --graph path/to/edges.el [--algo afforest] [--verify]
//   cc_tool --generate urand --scale 16 --out graph.sg
//
// Supports .el (text edge list) and .sg (binary CSR) inputs.
#include <iostream>

#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/suite.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  try {
    CommandLine cl(argc, argv);
    cl.describe("graph", "input file (.el or .sg)");
    cl.describe("generate", "generate a suite graph instead of loading "
                            "(road|osm-eur|twitter|web|urand|kron)");
    cl.describe("scale", "log2 vertex count for --generate (default 16)");
    cl.describe("out", "write the graph to this .sg/.el path and exit");
    cl.describe("algo", "algorithm name (default afforest); 'all' runs "
                        "every registered algorithm");
    cl.describe("verify", "check the result against serial union-find");
    cl.describe("save-labels", "write component labels to this .cl file");
    if (cl.help_requested()) {
      cl.print_help("connected components over graph files");
      return 0;
    }

    const std::string generate = cl.get_string("generate", "");
    const std::string graph_path = cl.get_string("graph", "");
    Graph g;
    if (!generate.empty()) {
      g = make_suite_graph(generate,
                           static_cast<int>(cl.get_int("scale", 16)));
    } else if (!graph_path.empty()) {
      g = load_graph(graph_path);
    } else {
      std::cerr << "error: pass --graph <file> or --generate <family>; "
                   "--help for usage\n";
      return 2;
    }
    std::cout << format_degree_stats(compute_degree_stats(g)) << '\n';

    const std::string out = cl.get_string("out", "");
    if (!out.empty()) {
      if (out.size() > 3 && out.substr(out.size() - 3) == ".sg") {
        write_serialized_graph(out, g);
      } else {
        EdgeList<std::int32_t> edges;
        for (std::int64_t u = 0; u < g.num_nodes(); ++u)
          for (std::int32_t v : g.out_neigh(static_cast<std::int32_t>(u)))
            if (static_cast<std::int32_t>(u) < v)
              edges.push_back({static_cast<std::int32_t>(u), v});
        write_edge_list(out, edges);
      }
      std::cout << "wrote " << out << '\n';
      return 0;
    }

    const std::string algo_name = cl.get_string("algo", "afforest");
    const bool verify = cl.get_bool("verify", false);
    std::vector<std::string> to_run;
    if (algo_name == "all") {
      for (const auto& a : cc_algorithms()) to_run.push_back(a.name);
    } else {
      to_run.push_back(algo_name);
    }
    const std::string save_labels = cl.get_string("save-labels", "");
    for (const auto& name : to_run) {
      const auto& algo = cc_algorithm(name);
      Timer t;
      t.start();
      const auto labels = algo.run(g);
      t.stop();
      const auto s = summarize_components(labels);
      std::cout << name << ": " << t.millisecs() << " ms, "
                << s.num_components << " components, largest "
                << s.largest_size;
      if (verify)
        std::cout << (verify_cc(g, labels) ? "  [verified]"
                                           : "  [VERIFY FAILED]");
      std::cout << '\n';
      if (!save_labels.empty() && name == to_run.front()) {
        write_labels(save_labels, labels);
        std::cout << "labels written to " << save_labels << '\n';
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
