// Social-network analysis: generate a Kronecker "follower graph" (the
// topology class of the paper's twitter dataset), find its communities'
// connectivity structure, and compare Afforest against the baselines —
// the workload the paper's introduction motivates.
#include <iostream>

#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of user count (default 16)");
  cl.describe("degree", "average followers per user (default 16)");
  if (cl.help_requested()) {
    cl.print_help("connected components of a synthetic social network");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 16));
  const auto degree = cl.get_int("degree", 16);

  std::cout << "Generating a scale-" << scale << " social network...\n";
  const Graph g = build_undirected(
      generate_kronecker_edges<std::int32_t>(scale, degree, 2026),
      std::int64_t{1} << scale);
  std::cout << format_degree_stats(compute_degree_stats(g)) << "\n\n";

  // Run every registered algorithm, timing each.
  TextTable table({"algorithm", "ms", "components", "largest %"});
  for (const auto& algo : cc_algorithms()) {
    Timer t;
    t.start();
    const auto labels = algo.run(g);
    t.stop();
    const auto s = summarize_components(labels);
    table.add_row({algo.name, TextTable::fmt(t.millisecs(), 2),
                   TextTable::fmt_int(s.num_components),
                   TextTable::fmt(100.0 * s.largest_fraction, 2)});
  }
  table.print(std::cout);

  // Component size distribution — the "one giant + many tiny" shape that
  // makes large-component skipping effective (paper §IV-D).
  const auto sizes =
      component_sizes(cc_algorithm("afforest").run(g));
  std::cout << "\ntop component sizes:";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sizes.size()); ++i)
    std::cout << ' ' << sizes[i];
  std::cout << "\n(" << sizes.size() << " components total)\n";
  return 0;
}
