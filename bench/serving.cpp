// Mixed read/write serving workload over src/serve's QueryEngine.
//
// One writer thread streams a uniform-random edge list into the engine in
// batches (apply_batch + publish per batch) while R reader threads issue
// SoA query batches against the published snapshots.  The read fraction
// sets how many queries ride alongside the edge stream
// (queries = edges * f / (1 - f)), the key sampler sets which vertices the
// queries touch (uniform or Zipfian, the YCSB-style skew), and the batch
// sweep varies the write-batch size — the knob that trades snapshot
// freshness against publish amortization.
//
// Reported per batch size: ingest wall time, query throughput, and
// query-batch latency quantiles (p50/p95/p99).  With --json the run emits
// afforest-bench-1 records in two groups:
//
//   * graph "serve-urand" — a "serial-uf" anchor plus "serve-query-steady"
//     (a query batch answered against the final snapshot, no concurrent
//     writer).  Compute-bound, so its anchor-normalized ratio is stable
//     across machines: this is the record the perf-smoke gate tracks.
//   * graph "serve-urand-mixed" — the mixed-phase "serve-ingest" /
//     "serve-query" records.  Their wall times depend on how the scheduler
//     interleaves writer and readers (core-count-sensitive), so they carry
//     no anchor and ratio-mode comparison reports them as notes instead of
//     gating on them.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using afforest::EdgeList;
using afforest::Timer;
using afforest::Xoshiro256;
using NodeID = std::int32_t;

struct MixConfig {
  std::int64_t num_nodes = 0;
  std::int64_t edge_batch = 1024;
  std::int64_t query_batch = 256;
  int readers = 2;
  double read_fraction = 0.9;
  afforest::serve::Skew skew = afforest::serve::Skew::kUniform;
  double theta = 0.99;
  std::uint64_t seed = 42;
};

struct MixResult {
  double wall_s = 0;                     ///< whole mixed phase
  double ingest_s = 0;                   ///< writer thread's portion
  std::vector<double> batch_latencies_s; ///< one sample per query batch
  std::uint64_t queries = 0;
  std::uint64_t edges = 0;
  std::uint64_t epoch_violations = 0;    ///< should stay 0 (monotone epochs)
  std::int64_t components = 0;           ///< final component count
};

/// Runs one full mixed phase: writer streams `edges` in batches, readers
/// issue query batches until the target query count is served.
MixResult run_mixed(const EdgeList<NodeID>& edges, const MixConfig& cfg) {
  afforest::serve::QueryEngine<NodeID> engine(cfg.num_nodes);
  const std::int64_t m = static_cast<std::int64_t>(edges.size());

  // read fraction f over total operations: queries = edges * f / (1 - f).
  const double f = std::clamp(cfg.read_fraction, 0.0, 0.99);
  const auto target_queries =
      static_cast<std::uint64_t>(static_cast<double>(m) * f / (1.0 - f));

  const afforest::serve::KeySampler sampler(
      cfg.skew, static_cast<std::uint64_t>(cfg.num_nodes), cfg.theta);
  const Xoshiro256 root_rng(cfg.seed);

  MixResult result;
  result.edges = static_cast<std::uint64_t>(m);
  std::atomic<std::uint64_t> queries_served{0};
  std::atomic<std::uint64_t> epoch_violations{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(std::max(cfg.readers, 1)));

  Timer wall;
  wall.start();

  std::thread writer([&] {
    Timer t;
    t.start();
    for (std::int64_t start = 0; start < m; start += cfg.edge_batch) {
      const auto count = static_cast<std::size_t>(
          std::min(cfg.edge_batch, m - start));
      engine.apply_batch(edges.data() + start, count);
      engine.publish();
    }
    if (m == 0) engine.publish();  // at least one epoch turn per phase
    t.stop();
    result.ingest_s = t.seconds();
  });

  std::vector<std::thread> reader_threads;
  reader_threads.reserve(static_cast<std::size_t>(cfg.readers));
  for (int r = 0; r < cfg.readers; ++r) {
    reader_threads.emplace_back([&, r] {
      Xoshiro256 rng = root_rng.split(static_cast<std::uint64_t>(r) + 1);
      afforest::serve::QueryBatch<NodeID> batch;
      std::uint64_t last_epoch = 0;
      while (queries_served.fetch_add(
                 static_cast<std::uint64_t>(cfg.query_batch)) <
             target_queries) {
        batch.clear();
        for (std::int64_t i = 0; i < cfg.query_batch; ++i)
          batch.add(static_cast<NodeID>(sampler.next(rng)),
                    static_cast<NodeID>(sampler.next(rng)));
        Timer t;
        t.start();
        engine.answer(batch);
        t.stop();
        latencies[static_cast<std::size_t>(r)].push_back(t.seconds());
        if (batch.epoch < last_epoch) epoch_violations.fetch_add(1);
        last_epoch = batch.epoch;
      }
    });
  }

  writer.join();
  for (auto& t : reader_threads) t.join();
  wall.stop();

  result.wall_s = wall.seconds();
  result.queries = 0;
  for (const auto& per_reader : latencies) {
    result.queries += static_cast<std::uint64_t>(per_reader.size()) *
                      static_cast<std::uint64_t>(cfg.query_batch);
    result.batch_latencies_s.insert(result.batch_latencies_s.end(),
                                    per_reader.begin(), per_reader.end());
  }
  result.epoch_violations = epoch_violations.load();
  result.components = engine.component_count();
  return result;
}

std::vector<std::int64_t> parse_batch_sizes(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::stoll(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty())
    throw std::invalid_argument("--batch-sizes parsed to an empty list");
  for (const std::int64_t b : out)
    if (b <= 0)
      throw std::invalid_argument("--batch-sizes entries must be positive");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "mixed-phase repetitions per batch size (default 3)");
  cl.describe("degree", "average degree of the streamed graph (default 8)");
  cl.describe("read-fraction",
              "fraction of operations that are queries (default 0.9)");
  cl.describe("skew", "query key distribution: uniform | zipfian");
  cl.describe("theta", "zipfian skew parameter in (0,1) (default 0.99)");
  cl.describe("readers", "number of query threads (default 2)");
  cl.describe("query-batch", "queries per QueryBatch (default 256)");
  cl.describe("batch-sizes",
              "comma-separated write-batch sweep (default 256,1024,4096)");
  cl.describe("steady-queries",
              "steady-state throughput batch size (default 65536; 0 skips)");
  cl.describe("seed", "workload RNG seed (default 42)");
  bench::JsonReporter json(cl, "serving");
  if (!bench::standard_preamble(
          cl, "Serving: mixed read/write connectivity workload"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 3));
  const int degree = static_cast<int>(cl.get_int("degree", 8));
  const double read_fraction = cl.get_double("read-fraction", 0.9);
  const std::string skew_str = cl.get_string("skew", "uniform");
  const double theta = cl.get_double("theta", 0.99);
  const int readers = static_cast<int>(cl.get_int("readers", 2));
  const std::int64_t query_batch = cl.get_int("query-batch", 256);
  const std::string batch_csv = cl.get_string("batch-sizes", "256,1024,4096");
  const std::int64_t steady_queries = cl.get_int("steady-queries", 1 << 16);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  bench::warn_unknown_flags(cl);

  serve::Skew skew;
  std::vector<std::int64_t> batch_sizes;
  try {
    skew = serve::parse_skew(skew_str);
    batch_sizes = parse_batch_sizes(batch_csv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "serving: " << e.what() << "\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const EdgeList<NodeID> edges = generate_uniform_edges<NodeID>(n, m, seed);
  const std::string graph = "serve-urand";
  const std::string mixed_graph = "serve-urand-mixed";
  std::cout << "graph=" << graph << " V=" << n << " E=" << m
            << " read_fraction=" << read_fraction << " skew="
            << serve::skew_name(skew) << " readers=" << readers << "\n\n";

  // Ratio-mode anchor: serial union-find over the same edge list.  Kept on
  // the same graph name so bench_compare can normalize serving records
  // without reference to the fig8a suite.
  const auto anchor_summary = bench::time_trials(
      [&] { union_find_cc(edges, n); }, trials);
  if (json.collect())
    json.add(graph, "serial-uf", {{"scale", scale}, {"trials", trials}},
             anchor_summary);

  TextTable table({"batch", "ingest ms", "wall ms", "queries", "kq/s",
                   "lat p50 us", "lat p95 us", "lat p99 us", "comps"});
  for (const std::int64_t batch : batch_sizes) {
    MixConfig cfg;
    cfg.num_nodes = n;
    cfg.edge_batch = batch;
    cfg.query_batch = query_batch;
    cfg.readers = readers;
    cfg.read_fraction = read_fraction;
    cfg.skew = skew;
    cfg.theta = theta;
    cfg.seed = seed;

    std::vector<double> ingest_times;
    std::vector<double> all_latencies;
    MixResult last;
    for (int t = 0; t < std::max(1, trials); ++t) {
      last = run_mixed(edges, cfg);
      ingest_times.push_back(last.ingest_s);
      all_latencies.insert(all_latencies.end(),
                           last.batch_latencies_s.begin(),
                           last.batch_latencies_s.end());
      if (last.epoch_violations != 0) {
        std::cerr << "serving: FATAL: observed " << last.epoch_violations
                  << " epoch monotonicity violation(s)\n";
        return 1;
      }
    }

    const double qps =
        last.wall_s > 0 ? static_cast<double>(last.queries) / last.wall_s : 0;
    table.add_row(
        {std::to_string(batch), TextTable::fmt(median(ingest_times) * 1e3, 2),
         TextTable::fmt(last.wall_s * 1e3, 2), std::to_string(last.queries),
         TextTable::fmt(qps / 1e3, 1),
         TextTable::fmt(percentile(all_latencies, 50) * 1e6, 1),
         TextTable::fmt(percentile(all_latencies, 95) * 1e6, 1),
         TextTable::fmt(percentile(all_latencies, 99) * 1e6, 1),
         std::to_string(last.components)});

    if (json.collect()) {
      const std::vector<bench::Param> params = {
          {"scale", scale},
          {"trials", trials},
          {"batch", batch},
          {"query_batch", query_batch},
          {"readers", readers},
          {"read_fraction", read_fraction},
          {"skew", serve::skew_name(skew)},
          {"theta", theta}};
      // One armed pass captures the serving counters (queries served,
      // snapshot swaps, edges ingested) and the serve.compact phase time;
      // the timed phases above run with telemetry dark.
      const telemetry::Report report =
          bench::measure_counters([&] { run_mixed(edges, cfg); });
      json.add(mixed_graph, "serve-ingest", params,
               summarize_trials(ingest_times), report);
      json.add(mixed_graph, "serve-query", params,
               summarize_trials(all_latencies), report);
    }
  }
  table.print(std::cout);

  // Steady-state query throughput: one big batch answered against the final
  // snapshot with no concurrent writer.  Compute-bound, so this is the
  // anchor-normalized record the perf-smoke gate tracks.
  if (steady_queries > 0) {
    serve::QueryEngine<NodeID> engine(n);
    engine.apply_batch(edges);
    engine.publish();
    const serve::KeySampler sampler(
        skew, static_cast<std::uint64_t>(n), theta);
    Xoshiro256 rng = Xoshiro256(seed).split(0xBEEF);
    serve::QueryBatch<NodeID> batch;
    for (std::int64_t i = 0; i < steady_queries; ++i)
      batch.add(static_cast<NodeID>(sampler.next(rng)),
                static_cast<NodeID>(sampler.next(rng)));
    const TrialSummary steady =
        bench::time_trials([&] { engine.answer(batch); }, trials);
    const double mqps = steady.median_s > 0
                            ? static_cast<double>(steady_queries) /
                                  steady.median_s / 1e6
                            : 0;
    std::cout << "\nsteady-state (no writer): " << steady_queries
              << " queries in " << TextTable::fmt(steady.median_s * 1e3, 2)
              << " ms median (" << TextTable::fmt(mqps, 1) << " Mq/s)\n";
    if (json.collect()) {
      const telemetry::Report report =
          bench::measure_counters([&] { engine.answer(batch); });
      json.add(graph, "serve-query-steady",
               {{"scale", scale},
                {"trials", trials},
                {"steady_queries", steady_queries},
                {"skew", serve::skew_name(skew)},
                {"theta", theta}},
               steady, report);
    }
  }
  std::cout << "\nexpected shape: larger write batches amortize publishes "
               "(lower ingest time) at the cost of staler snapshots; query "
               "latency stays flat because reads never block on the "
               "writer.\n";
  return 0;
}
