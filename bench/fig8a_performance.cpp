// Reproduces Fig 8a: runtime of Afforest vs all baselines on every suite
// graph, with the paper's reporting (median of N trials, 25th/75th
// percentiles) plus speedup-over-SV and speedup-over-best-non-SV columns.
//
// Expected shape: Afforest fastest or near-fastest everywhere; large
// speedups over SV (paper: 2.49–67x); DOBFS can win on single-component
// urand (paper observed 0.47x there).
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "cc/verifier.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count per graph (default 15)");
  cl.describe("trials", "timing trials per algorithm (default 7; paper 16)");
  cl.describe("verify", "verify every result against union-find (default true)");
  bench::JsonReporter json(cl, "fig8a_performance");
  if (!bench::standard_preamble(
          cl, "Fig 8a: CC runtime across algorithms and graph families"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const int trials = static_cast<int>(cl.get_int("trials", 7));
  const bool verify = cl.get_bool("verify", true);
  bench::warn_unknown_flags(cl);

  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    std::cout << "graph=" << entry.name << " V=" << g.num_nodes()
              << " E=" << g.num_edges() << "\n";
    const auto truth = verify ? union_find_cc(g)
                              : ComponentLabels<std::int32_t>{};

    TextTable table({"algorithm", "median ms", "p25 ms", "p75 ms",
                     "vs sv", "ok"});
    double sv_median = 0;
    std::vector<std::pair<std::string, TrialSummary>> results;
    for (const auto& algo : cc_algorithms()) {
      const auto summary = bench::time_trials([&] { algo.run(g); }, trials);
      if (algo.name == "sv") sv_median = summary.median_s;
      results.emplace_back(algo.name, summary);
      if (json.collect()) {
        // Counters ride on a separate armed pass so the timed trials above
        // stay untouched by telemetry.
        json.add(entry.name, algo.name,
                 {{"scale", scale}, {"trials", trials}}, summary,
                 bench::measure_counters([&] { algo.run(g); }));
      }
    }
    for (const auto& [name, summary] : results) {
      const bool ok =
          !verify || labels_equivalent(cc_algorithm(name).run(g), truth);
      table.add_row(
          {name, TextTable::fmt(summary.median_s * 1e3, 2),
           TextTable::fmt(summary.p25_s * 1e3, 2),
           TextTable::fmt(summary.p75_s * 1e3, 2),
           summary.median_s > 0
               ? TextTable::fmt(sv_median / summary.median_s, 2) + "x"
               : "-",
           ok ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: afforest > sv everywhere; dobfs may beat "
               "afforest on urand (single giant component).\n";
  return 0;
}
