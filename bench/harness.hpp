// Shared helpers for the table/figure benchmark binaries: repeated-trial
// timing with the paper's reporting convention (median, 25th/75th
// percentiles) and common CLI plumbing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/telemetry.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/json_writer.hpp"
#include "util/platform.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace afforest::bench {

/// Wall-clock budget for one time_trials call, from AFFOREST_WATCHDOG_S
/// (seconds; 0 or unset = unlimited).  The watchdog is cooperative: it is
/// consulted between trials, so a run over budget finishes its current
/// trial, reports what it has, and skips the rest — a hung benchmark grid
/// degrades to a partial report instead of stalling the whole sweep.
/// (Kernels that fail to converge at all are covered separately by the
/// iteration guards in src/cc/guards.hpp.)
inline double watchdog_budget_seconds() {
  if (const auto v = env::as_double("AFFOREST_WATCHDOG_S"); v && *v > 0.0)
    return *v;
  return 0.0;
}

/// Times `fn` `trials` times and summarizes (median / p25 / p75), matching
/// §VI's methodology.  The function's side effects are discarded.  When
/// `budget_seconds` > 0 (default: AFFOREST_WATCHDOG_S), trials stop early
/// once the budget is spent; at least one trial always runs.
inline TrialSummary time_trials(const std::function<void()>& fn, int trials,
                                double budget_seconds =
                                    watchdog_budget_seconds()) {
  // "At least one trial always runs": a non-positive count previously
  // skipped the loop entirely and handed summarize_trials an empty sample.
  trials = std::max(1, trials);
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(trials));
  double elapsed = 0.0;
  for (int t = 0; t < trials; ++t) {
    if (budget_seconds > 0.0 && t > 0 && elapsed > budget_seconds) {
      std::cerr << "watchdog: trial budget of " << budget_seconds
                << " s spent after " << t << "/" << trials
                << " trials; reporting the partial sample\n";
      break;
    }
    Timer timer;
    timer.start();
    fn();
    timer.stop();
    seconds.push_back(timer.seconds());
    elapsed += timer.seconds();
  }
  return summarize_trials(seconds);
}

/// Standard preamble: handles --help, prints the experiment banner, and
/// warns about unknown flags.
inline bool standard_preamble(const CommandLine& cl,
                              const std::string& description) {
  if (cl.help_requested()) {
    cl.print_help(description);
    return false;
  }
  std::cout << "== " << description << "\n"
            << "host: " << platform_summary() << "\n\n";
  return true;
}

/// Report leftover (likely misspelled) flags after all get_* calls.
inline void warn_unknown_flags(const CommandLine& cl) {
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
}

// ---- machine-readable output (--json) -------------------------------------
// Every benchmark binary can mirror its human-readable tables into one JSON
// document per run (schema "afforest-bench-1"; glossary and refresh
// procedure in docs/BENCHMARKING.md).  scripts/bench_compare.py consumes
// these files, and the perf-smoke CI job diffs them against
// results/baseline.json.

/// One typed benchmark parameter (scale, trials, threads, ...).  The
/// implicit constructors let call sites write
///   {{"scale", 15}, {"family", "kron"}, {"verify", true}}.
struct Param {
  enum class Kind { kString, kInt, kDouble, kBool };

  Param(std::string name_, const char* v)
      : name(std::move(name_)), kind(Kind::kString), s(v) {}
  Param(std::string name_, std::string v)
      : name(std::move(name_)), kind(Kind::kString), s(std::move(v)) {}
  Param(std::string name_, std::int64_t v)
      : name(std::move(name_)), kind(Kind::kInt), i(v) {}
  Param(std::string name_, int v)
      : name(std::move(name_)), kind(Kind::kInt), i(v) {}
  Param(std::string name_, double v)
      : name(std::move(name_)), kind(Kind::kDouble), d(v) {}
  Param(std::string name_, bool v)
      : name(std::move(name_)), kind(Kind::kBool), b(v) {}

  std::string name;
  Kind kind;
  std::string s;
  std::int64_t i = 0;
  double d = 0;
  bool b = false;
};

/// One benchmark measurement: a (graph, algorithm) pair with its trial
/// summary and, when telemetry was captured for the run, the kernel
/// counters/phase times/peak RSS.
struct JsonRecord {
  std::string graph;
  std::string algorithm;
  std::vector<Param> params;
  TrialSummary trials;
  bool has_telemetry = false;
  telemetry::Report report;
};

/// Runs `fn` once with telemetry armed (fresh counters) and returns the
/// captured report.  Used for the counters attached to JSON records: the
/// instrumented pass is separate from the timed trials, so arming the
/// counters can never skew the timings it annotates.
inline telemetry::Report measure_counters(const std::function<void()>& fn) {
  const telemetry::ScopedEnable scoped(/*fresh=*/true);
  fn();
  return telemetry::capture();
}

/// Serializes a full run (host/build preamble + records) as the
/// "afforest-bench-1" schema.  Exposed separately from JsonReporter so
/// tests can validate the document without touching the filesystem.
inline std::string render_json(const std::string& experiment,
                               const std::vector<JsonRecord>& records) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("afforest-bench-1");
  w.key("experiment").value(experiment);

  w.key("host").begin_object();
  w.key("summary").value(platform_summary());
  w.key("hardware_threads").value(std::int64_t{hardware_threads()});
  w.key("omp_threads").value(std::int64_t{num_threads()});
  w.end_object();

  w.key("build").begin_object();
#ifdef __VERSION__
  w.key("compiler").value(std::string(__VERSION__));
#else
  w.key("compiler").value("unknown");
#endif
#ifdef NDEBUG
  w.key("assertions").value(false);
#else
  w.key("assertions").value(true);
#endif
  w.key("telemetry_compiled_in").value(telemetry::compiled_in());
  w.end_object();

  w.key("records").begin_array();
  for (const JsonRecord& r : records) {
    w.begin_object();
    w.key("graph").value(r.graph);
    w.key("algorithm").value(r.algorithm);
    w.key("params").begin_object();
    for (const Param& p : r.params) {
      w.key(p.name);
      switch (p.kind) {
        case Param::Kind::kString: w.value(p.s); break;
        case Param::Kind::kInt: w.value(p.i); break;
        case Param::Kind::kDouble: w.value(p.d); break;
        case Param::Kind::kBool: w.value(p.b); break;
      }
    }
    w.end_object();
    w.key("trials").begin_object();
    w.key("median_s").value(r.trials.median_s);
    w.key("p25_s").value(r.trials.p25_s);
    w.key("p75_s").value(r.trials.p75_s);
    w.key("min_s").value(r.trials.min_s);
    w.key("max_s").value(r.trials.max_s);
    w.key("count").value(static_cast<std::uint64_t>(r.trials.trials));
    w.end_object();
    if (r.has_telemetry) {
      const telemetry::Counters& c = r.report.counters;
      w.key("counters").begin_object();
      w.key("link_calls").value(c.link_calls);
      w.key("link_retries").value(c.link_retries);
      w.key("link_retry_peak").value(c.link_retry_peak);
      w.key("cas_attempts").value(c.cas_attempts);
      w.key("cas_failures").value(c.cas_failures);
      w.key("compress_calls").value(c.compress_calls);
      w.key("compress_hops").value(c.compress_hops);
      w.key("phase3_vertices_skipped").value(c.phase3_vertices_skipped);
      w.key("phase3_edges_skipped").value(c.phase3_edges_skipped);
      w.key("iterations").value(c.iterations);
      w.key("sv_hooks_fired").value(c.sv_hooks_fired);
      w.key("lp_label_updates").value(c.lp_label_updates);
      w.key("serve_queries_served").value(c.serve_queries_served);
      w.key("serve_snapshot_swaps").value(c.serve_snapshot_swaps);
      w.key("serve_edges_ingested").value(c.serve_edges_ingested);
      w.key("dynamic_deletes_free").value(c.dynamic_deletes_free);
      w.key("dynamic_rebuilds").value(c.dynamic_rebuilds);
      w.key("dynamic_rebuild_vertices").value(c.dynamic_rebuild_vertices);
      w.key("wal_records_appended").value(c.wal_records_appended);
      w.key("wal_bytes_appended").value(c.wal_bytes_appended);
      w.key("wal_records_replayed").value(c.wal_records_replayed);
      w.key("wal_checkpoints_written").value(c.wal_checkpoints_written);
      w.key("wal_torn_tail_truncations").value(c.wal_torn_tail_truncations);
      w.key("shard_boundary_msgs").value(c.shard_boundary_msgs);
      w.key("shard_quotient_edges").value(c.shard_quotient_edges);
      w.key("shard_epoch_publishes").value(c.shard_epoch_publishes);
      w.key("failpoints_fired").value(c.failpoints_fired);
      w.end_object();
      w.key("phases").begin_array();
      for (const telemetry::PhaseSample& ph : r.report.phases) {
        w.begin_object();
        w.key("name").value(ph.name);
        w.key("seconds").value(ph.seconds);
        w.key("count").value(ph.count);
        w.end_object();
      }
      w.end_array();
      w.key("peak_rss_bytes").value(r.report.peak_rss_bytes);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Writes the document to `path`; returns false (with a stderr note) on
/// I/O failure so benchmark teardown never throws.
inline bool emit_json(const std::string& path, const std::string& experiment,
                      const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "json: cannot open " << path << " for writing\n";
    return false;
  }
  out << render_json(experiment, records) << '\n';
  if (!out) {
    std::cerr << "json: write to " << path << " failed\n";
    return false;
  }
  return true;
}

/// --json plumbing for a benchmark binary: declares the flag, collects
/// records, and writes the document on flush().  When --json is absent the
/// reporter is inert (collect() returns false → callers skip the extra
/// counter pass entirely).
class JsonReporter {
 public:
  JsonReporter(CommandLine& cl, std::string experiment)
      : experiment_(std::move(experiment)) {
    cl.describe("json",
                "write machine-readable results (afforest-bench-1 schema) "
                "to this path");
    path_ = cl.get_string("json", "");
  }

  /// True when --json was given and records should be collected.
  [[nodiscard]] bool collect() const { return !path_.empty(); }

  void add(JsonRecord record) {
    if (collect()) records_.push_back(std::move(record));
  }

  /// Convenience: time-summary-only record.
  void add(const std::string& graph, const std::string& algorithm,
           std::vector<Param> params, const TrialSummary& trials) {
    JsonRecord r;
    r.graph = graph;
    r.algorithm = algorithm;
    r.params = std::move(params);
    r.trials = trials;
    add(std::move(r));
  }

  /// Convenience: record with a telemetry report attached.
  void add(const std::string& graph, const std::string& algorithm,
           std::vector<Param> params, const TrialSummary& trials,
           telemetry::Report report) {
    JsonRecord r;
    r.graph = graph;
    r.algorithm = algorithm;
    r.params = std::move(params);
    r.trials = trials;
    r.has_telemetry = true;
    r.report = std::move(report);
    add(std::move(r));
  }

  /// Writes the file (no-op without --json).  Returns true on success or
  /// when inert.
  bool flush() {
    if (!collect()) return true;
    if (flushed_) return true;
    flushed_ = true;
    const bool ok = emit_json(path_, experiment_, records_);
    if (ok)
      std::cout << "json: wrote " << records_.size() << " record(s) to "
                << path_ << "\n";
    return ok;
  }

  ~JsonReporter() { flush(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

 private:
  std::string experiment_;
  std::string path_;
  std::vector<JsonRecord> records_;
  bool flushed_ = false;
};

}  // namespace afforest::bench
