// Shared helpers for the table/figure benchmark binaries: repeated-trial
// timing with the paper's reporting convention (median, 25th/75th
// percentiles) and common CLI plumbing.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/platform.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace afforest::bench {

/// Wall-clock budget for one time_trials call, from AFFOREST_WATCHDOG_S
/// (seconds; 0 or unset = unlimited).  The watchdog is cooperative: it is
/// consulted between trials, so a run over budget finishes its current
/// trial, reports what it has, and skips the rest — a hung benchmark grid
/// degrades to a partial report instead of stalling the whole sweep.
/// (Kernels that fail to converge at all are covered separately by the
/// iteration guards in src/cc/guards.hpp.)
inline double watchdog_budget_seconds() {
  if (const auto v = env::as_double("AFFOREST_WATCHDOG_S"); v && *v > 0.0)
    return *v;
  return 0.0;
}

/// Times `fn` `trials` times and summarizes (median / p25 / p75), matching
/// §VI's methodology.  The function's side effects are discarded.  When
/// `budget_seconds` > 0 (default: AFFOREST_WATCHDOG_S), trials stop early
/// once the budget is spent; at least one trial always runs.
inline TrialSummary time_trials(const std::function<void()>& fn, int trials,
                                double budget_seconds =
                                    watchdog_budget_seconds()) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(trials));
  double elapsed = 0.0;
  for (int t = 0; t < trials; ++t) {
    if (budget_seconds > 0.0 && t > 0 && elapsed > budget_seconds) {
      std::cerr << "watchdog: trial budget of " << budget_seconds
                << " s spent after " << t << "/" << trials
                << " trials; reporting the partial sample\n";
      break;
    }
    Timer timer;
    timer.start();
    fn();
    timer.stop();
    seconds.push_back(timer.seconds());
    elapsed += timer.seconds();
  }
  return summarize_trials(seconds);
}

/// Standard preamble: handles --help, prints the experiment banner, and
/// warns about unknown flags.
inline bool standard_preamble(const CommandLine& cl,
                              const std::string& description) {
  if (cl.help_requested()) {
    cl.print_help(description);
    return false;
  }
  std::cout << "== " << description << "\n"
            << "host: " << platform_summary() << "\n\n";
  return true;
}

/// Report leftover (likely misspelled) flags after all get_* calls.
inline void warn_unknown_flags(const CommandLine& cl) {
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
}

}  // namespace afforest::bench
