// Shared helpers for the table/figure benchmark binaries: repeated-trial
// timing with the paper's reporting convention (median, 25th/75th
// percentiles) and common CLI plumbing.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/platform.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace afforest::bench {

/// Times `fn` `trials` times and summarizes (median / p25 / p75), matching
/// §VI's methodology.  The function's side effects are discarded.
inline TrialSummary time_trials(const std::function<void()>& fn,
                                int trials) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Timer timer;
    timer.start();
    fn();
    timer.stop();
    seconds.push_back(timer.seconds());
  }
  return summarize_trials(seconds);
}

/// Standard preamble: handles --help, prints the experiment banner, and
/// warns about unknown flags.
inline bool standard_preamble(const CommandLine& cl,
                              const std::string& description) {
  if (cl.help_requested()) {
    cl.print_help(description);
    return false;
  }
  std::cout << "== " << description << "\n"
            << "host: " << platform_summary() << "\n\n";
  return true;
}

/// Report leftover (likely misspelled) flags after all get_* calls.
inline void warn_unknown_flags(const CommandLine& cl) {
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
}

}  // namespace afforest::bench
