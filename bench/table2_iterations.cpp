// Reproduces Table II: SV iterations & max tree depth vs Afforest average
// local (per-edge) iterations & max tree depth, per graph family.
//
// Paper's expectation: Afforest's avg local iterations ≈ 1 on every graph
// (most link calls merely validate an already-converged tree) and its tree
// depth stays close to SV's despite unbounded traversal.
#include <iostream>

#include "analysis/instrumented.hpp"
#include "bench/harness.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count per graph (default 14)");
  bench::JsonReporter json(cl, "table2_iterations");
  if (!bench::standard_preamble(
          cl, "Table II: iterations and component-tree depth, SV vs Afforest"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  bench::warn_unknown_flags(cl);

  TextTable table({"graph", "SV iters", "SV max depth", "Afforest avg iters",
                   "Afforest max depth"});
  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    const auto sv = shiloach_vishkin_instrumented(g);
    const auto aff = afforest_instrumented(g);
    table.add_row({entry.name, TextTable::fmt_int(sv.iterations),
                   TextTable::fmt_int(sv.max_tree_depth),
                   TextTable::fmt(aff.avg_local_iterations(), 3),
                   TextTable::fmt_int(aff.max_tree_depth)});
    json.add(entry.name, "sv",
             {{"scale", scale},
              {"iterations", sv.iterations},
              {"max_tree_depth", sv.max_tree_depth}},
             TrialSummary{});
    json.add(entry.name, "afforest",
             {{"scale", scale},
              {"avg_local_iterations", aff.avg_local_iterations()},
              {"max_tree_depth", aff.max_tree_depth}},
             TrialSummary{});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: Afforest avg iters ~1.0 on every family; "
               "depths within a small constant of SV's.\n";
  return 0;
}
