// NodeID width ablation: the whole pipeline is templated on the vertex id
// type (as in GAPBS).  64-bit ids double π and CSR memory traffic; this
// bench measures what that costs Afforest and SV on the same topology —
// the practical answer to "should I build with int64 ids below 2^31
// vertices?" (no).
#include <iostream>

#include "bench/harness.hpp"
#include "cc/afforest.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "graph/builder.hpp"
#include "graph/generators/kronecker.hpp"
#include "util/table.hpp"

namespace {

using namespace afforest;

template <typename NodeID>
CSRGraph<NodeID> make_graph(int scale) {
  return build_undirected(
      generate_kronecker_edges<NodeID>(scale, 16, 42),
      std::int64_t{1} << scale);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("trials", "timing trials per cell (default 7)");
  bench::JsonReporter json(cl, "nodeid_width");
  if (!bench::standard_preamble(cl, "NodeID width ablation: int32 vs int64"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const int trials = static_cast<int>(cl.get_int("trials", 7));
  bench::warn_unknown_flags(cl);

  const auto g32 = make_graph<std::int32_t>(scale);
  const auto g64 = make_graph<std::int64_t>(scale);
  std::cout << "kron scale=" << scale << " V=" << g32.num_nodes()
            << " E=" << g32.num_edges() << "\n\n";

  TextTable table({"algorithm", "int32 ms", "int64 ms", "overhead"});
  {
    const auto t32 =
        bench::time_trials([&] { afforest_cc(g32); }, trials);
    const auto t64 =
        bench::time_trials([&] { afforest_cc(g64); }, trials);
    table.add_row({"afforest", TextTable::fmt(t32.median_s * 1e3, 2),
                   TextTable::fmt(t64.median_s * 1e3, 2),
                   TextTable::fmt(t64.median_s / t32.median_s, 2) + "x"});
    json.add("kron", "afforest",
             {{"scale", scale}, {"trials", trials}, {"node_id_bits", 32}},
             t32);
    json.add("kron", "afforest",
             {{"scale", scale}, {"trials", trials}, {"node_id_bits", 64}},
             t64);
  }
  {
    const auto t32 =
        bench::time_trials([&] { shiloach_vishkin(g32); }, trials);
    const auto t64 =
        bench::time_trials([&] { shiloach_vishkin(g64); }, trials);
    table.add_row({"sv", TextTable::fmt(t32.median_s * 1e3, 2),
                   TextTable::fmt(t64.median_s * 1e3, 2),
                   TextTable::fmt(t64.median_s / t32.median_s, 2) + "x"});
    json.add("kron", "sv",
             {{"scale", scale}, {"trials", trials}, {"node_id_bits", 32}},
             t32);
    json.add("kron", "sv",
             {{"scale", scale}, {"trials", trials}, {"node_id_bits", 64}},
             t64);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: int64 costs up to ~2x on memory-bound "
               "phases; use int32 ids below 2^31 vertices.\n";
  return 0;
}
