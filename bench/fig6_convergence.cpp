// Reproduces Fig 6a (Linkage) and Fig 6b (Coverage): convergence rate vs
// percentage of processed edges on the web graph, comparing the four
// subgraph partitioning strategies of §V-B.
//
// Expected shape: neighbor sampling reaches ~80%+ linkage/coverage within
// two rounds, far ahead of random edge sampling; row partitioning is
// slowest; the spanning-forest ordering is the optimum.
#include <iostream>

#include "analysis/convergence.hpp"
#include "bench/harness.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("graph", "suite graph to analyze (default web)");
  cl.describe("batches", "batches for row/random strategies (default 20)");
  bench::JsonReporter json(cl, "fig6_convergence");
  if (!bench::standard_preamble(
          cl, "Fig 6a/6b: linkage & coverage vs processed edges by strategy"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const std::string graph_name = cl.get_string("graph", "web");
  const int batches = static_cast<int>(cl.get_int("batches", 20));
  bench::warn_unknown_flags(cl);

  const Graph g = make_suite_graph(graph_name, scale);
  std::cout << "graph=" << graph_name << " V=" << g.num_nodes()
            << " E=" << g.num_edges() << "\n\n";

  for (auto strategy :
       {PartitionStrategy::kRowPartition, PartitionStrategy::kRandomEdges,
        PartitionStrategy::kNeighborRounds, PartitionStrategy::kOptimalSF}) {
    ConvergenceOptions opts;
    opts.strategy = strategy;
    opts.num_batches = batches;
    const auto pts = measure_convergence(g, opts);
    TextTable table({"% edges", "linkage", "coverage"});
    for (const auto& p : pts) {
      table.add_row({TextTable::fmt(p.pct_edges_processed, 1),
                     TextTable::fmt(p.linkage, 4),
                     TextTable::fmt(p.coverage, 4)});
      json.add(graph_name, std::string("strategy-") + to_string(strategy),
               {{"scale", scale},
                {"batches", batches},
                {"pct_edges_processed", p.pct_edges_processed},
                {"linkage", p.linkage},
                {"coverage", p.coverage}},
               TrialSummary{});
    }
    std::cout << "strategy: " << to_string(strategy) << "\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
