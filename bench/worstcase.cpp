// §V-A worst-case study: how expensive are link and compress on the
// paper's adversarial constructions, and how far do realistic runs sit
// from the O(|V|) / O(|V|^2) bounds?
//
//   [1] adversarial star, serial adversarial edge order: total link-loop
//       iterations vs edge count (the unbounded-walk scenario)
//   [2] linear-depth chain: first compress cost vs a depth-1 forest
//   [3] the same star processed by the full parallel Afforest — showing
//       the interleaved compress defuses the adversarial order
#include <iostream>

#include "analysis/instrumented.hpp"
#include "bench/harness.hpp"
#include "cc/afforest.hpp"
#include "cc/verifier.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/adversarial.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "timing trials (default 5)");
  bench::JsonReporter json(cl, "worstcase");
  if (!bench::standard_preamble(cl, "SecV-A worst cases: link & compress"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  bench::warn_unknown_flags(cl);
  const std::int64_t n = std::int64_t{1} << scale;

  std::cout << "[1] serial adversarial star (n=" << n << ")\n";
  {
    const auto edges = adversarial_star_edges<std::int32_t>(n);
    auto comp = identity_labels<std::int32_t>(n);
    std::int64_t iters = 0;
    for (const auto& [u, v] : edges) link_counted(u, v, comp, iters);
    TextTable table({"edges", "link-loop iterations", "iters/edge"});
    table.add_row({TextTable::fmt_int(static_cast<long long>(edges.size())),
                   TextTable::fmt_int(iters),
                   TextTable::fmt(static_cast<double>(iters) /
                                      static_cast<double>(edges.size()), 3)});
    table.print(std::cout);
    json.add("adversarial-star", "link-serial",
             {{"scale", scale},
              {"edges", static_cast<std::int64_t>(edges.size())},
              {"link_loop_iterations", iters}},
             TrialSummary{});
  }

  std::cout << "\n[2] compress on linear-depth chain vs depth-1 forest\n";
  {
    TextTable table({"input", "median ms"});
    const auto deep = bench::time_trials(
        [&] {
          auto pi = linear_depth_forest<std::int32_t>(n);
          compress_all(pi);
        },
        trials);
    const auto shallow = bench::time_trials(
        [&] {
          auto pi = identity_labels<std::int32_t>(n);
          compress_all(pi);
        },
        trials);
    table.add_row({"linear-depth chain", TextTable::fmt(deep.median_s * 1e3, 3)});
    table.add_row({"depth-1 forest", TextTable::fmt(shallow.median_s * 1e3, 3)});
    table.print(std::cout);
    json.add("linear-depth-chain", "compress-all",
             {{"scale", scale}, {"trials", trials}}, deep);
    json.add("depth-1-forest", "compress-all",
             {{"scale", scale}, {"trials", trials}}, shallow);
  }

  std::cout << "\n[3] full Afforest on the adversarial star\n";
  {
    const Graph g = build_undirected(adversarial_star_edges<std::int32_t>(n), n);
    ComponentLabels<std::int32_t> labels;
    const auto stats = afforest_instrumented(g, &labels);
    TextTable table({"avg link iters", "max tree depth", "correct"});
    table.add_row({TextTable::fmt(stats.avg_local_iterations(), 3),
                   TextTable::fmt_int(stats.max_tree_depth),
                   labels_equivalent(labels, union_find_cc(g)) ? "yes" : "NO"});
    table.print(std::cout);
    json.add("adversarial-star", "afforest",
             {{"scale", scale},
              {"avg_local_iterations", stats.avg_local_iterations()},
              {"max_tree_depth", stats.max_tree_depth}},
             TrialSummary{});
  }
  std::cout << "\nexpected shape: serial adversarial order costs >1 "
               "iters/edge; interleaved compress keeps the full algorithm "
               "near 1.\n";
  return 0;
}
