// Reproduces Fig 7: memory access pattern of the parent array π for
// (a) SV, (b) Afforest without component skipping, (c) full Afforest,
// on a urand graph (paper uses |V|=2^12, |E|=2^19).
//
// Each phase prints a text heat-map row over π's index space plus its
// access count.  Expected shape: SV's hook phases touch π densely and
// repeatedly every iteration; Afforest's link rounds are sequential with a
// hot region near the start of π (tree roots); component skipping shrinks
// the final link phase to almost nothing.
#include <iostream>

#include "analysis/locality.hpp"
#include "analysis/memtrace.hpp"
#include "bench/harness.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 12, as in the paper)");
  cl.describe("edge-scale", "log2 of edge count (default 19)");
  cl.describe("buckets", "heat-map resolution (default 64)");
  bench::JsonReporter json(cl, "fig7_memaccess");
  if (!bench::standard_preamble(cl,
                                "Fig 7: pi memory access pattern by phase"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 12));
  const int edge_scale = static_cast<int>(cl.get_int("edge-scale", 19));
  const int buckets = static_cast<int>(cl.get_int("buckets", 64));
  bench::warn_unknown_flags(cl);

  const std::int64_t n = std::int64_t{1} << scale;
  const Graph g = build_undirected(
      generate_uniform_edges<std::int32_t>(n, std::int64_t{1} << edge_scale,
                                           42),
      n);
  std::cout << "graph=urand V=" << g.num_nodes() << " E=" << g.num_edges()
            << "\n";

  std::cout << "\n(a) Shiloach-Vishkin  (I=init, Hk=hook, Sk=shortcut)\n";
  const auto sv = run_traced_sv(g);
  sv.trace.render_heatmap(std::cout, buckets, n);
  std::cout << "total accesses: " << sv.trace.total_accesses() << "\n";

  std::cout << "\n(b) Afforest, no component skip  (Lk=link, Ck=compress)\n";
  AfforestOptions no_skip;
  no_skip.skip_largest = false;
  const auto aff_ns = run_traced_afforest(g, no_skip);
  aff_ns.trace.render_heatmap(std::cout, buckets, n);
  std::cout << "total accesses: " << aff_ns.trace.total_accesses() << "\n";

  std::cout << "\n(c) Afforest  (F=find largest component)\n";
  const auto aff = run_traced_afforest(g);
  aff.trace.render_heatmap(std::cout, buckets, n);
  std::cout << "total accesses: " << aff.trace.total_accesses() << "\n";

  std::cout << "\nlocality metrics (all phases aggregated):\n";
  TextTable metrics({"algorithm", "accesses", "sequential frac",
                     "footprint", "gini concentration"});
  auto add_metrics = [&](const char* name, const TraceResult& r) {
    const auto m = compute_locality(r.trace, -1, n);
    metrics.add_row({name, TextTable::fmt_int(m.total_accesses),
                     TextTable::fmt(m.sequential_fraction, 3),
                     TextTable::fmt_int(m.footprint),
                     TextTable::fmt(m.gini_concentration, 3)});
    json.add("urand", name,
             {{"scale", scale},
              {"edge_scale", edge_scale},
              {"total_accesses", m.total_accesses},
              {"sequential_fraction", m.sequential_fraction},
              {"footprint", m.footprint},
              {"gini_concentration", m.gini_concentration}},
             TrialSummary{});
  };
  add_metrics("sv", sv);
  add_metrics("afforest-noskip", aff_ns);
  add_metrics("afforest", aff);
  metrics.print(std::cout);

  std::cout << "\nexpected shape: SV >> Afforest total accesses; skipping "
               "empties the final link phase (L*); Afforest is more "
               "sequential and more root-concentrated (SecV-C).\n";
  return 0;
}
