// google-benchmark microbenchmarks of Afforest's primitives and the graph
// substrate: link on pre-merged vs fresh trees, compress on shallow vs deep
// forests, sample_frequent_element, CSR build, and full algorithm runs on a
// fixed graph.
#include <benchmark/benchmark.h>

#include "cc/afforest.hpp"
#include "cc/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/suite.hpp"

namespace {

using namespace afforest;
using NodeID = std::int32_t;

void BM_LinkFreshSingletons(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto comp = identity_labels<NodeID>(n);
    state.ResumeTiming();
    for (std::int64_t v = 1; v < n; ++v)
      link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
    benchmark::DoNotOptimize(comp.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_LinkFreshSingletons)->Range(1 << 10, 1 << 16);

void BM_LinkAlreadyConverged(benchmark::State& state) {
  // The Table II insight: validating a converged tree costs ~1 iteration.
  const std::int64_t n = state.range(0);
  auto comp = identity_labels<NodeID>(n);
  for (std::int64_t v = 1; v < n; ++v)
    link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
  compress_all(comp);
  for (auto _ : state) {
    for (std::int64_t v = 1; v < n; ++v)
      link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
    benchmark::DoNotOptimize(comp.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_LinkAlreadyConverged)->Range(1 << 10, 1 << 16);

void BM_CompressShallowForest(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto base = identity_labels<NodeID>(n);
  for (std::int64_t v = 1; v < n; ++v)
    link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), base);
  compress_all(base);
  for (auto _ : state) {
    state.PauseTiming();
    auto comp = base.clone();
    state.ResumeTiming();
    compress_all(comp);
    benchmark::DoNotOptimize(comp.data());
  }
}
BENCHMARK(BM_CompressShallowForest)->Range(1 << 10, 1 << 16);

void BM_SampleFrequentElement(benchmark::State& state) {
  pvector<NodeID> comp(1 << 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sample_frequent_element(comp, static_cast<std::int32_t>(state.range(0))));
  }
}
BENCHMARK(BM_SampleFrequentElement)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BuildCSR(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto edges = generate_uniform_edges<NodeID>(n, 8 * n, 1);
  for (auto _ : state) {
    auto g = build_undirected(edges, n);
    benchmark::DoNotOptimize(g.num_stored_edges());
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_BuildCSR)->Range(1 << 10, 1 << 15);

void BM_FullAlgorithm(benchmark::State& state, const char* algo_name) {
  static const Graph g = make_suite_graph("kron", 14);
  const auto& algo = cc_algorithm(algo_name);
  for (auto _ : state) {
    auto labels = algo.run(g);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK_CAPTURE(BM_FullAlgorithm, afforest, "afforest");
BENCHMARK_CAPTURE(BM_FullAlgorithm, afforest_noskip, "afforest-noskip");
BENCHMARK_CAPTURE(BM_FullAlgorithm, sv, "sv");
BENCHMARK_CAPTURE(BM_FullAlgorithm, dobfs, "dobfs");

}  // namespace
