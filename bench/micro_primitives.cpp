// google-benchmark microbenchmarks of Afforest's primitives and the graph
// substrate: link on pre-merged vs fresh trees, compress on shallow vs deep
// forests, sample_frequent_element, CSR build, and full algorithm runs on a
// fixed graph.
//
// Custom main (instead of benchmark_main) so the binary shares the harness
// convention: --json <path> mirrors every benchmark's per-iteration real
// time into an afforest-bench-1 document alongside google-benchmark's
// normal console output.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "cc/afforest.hpp"
#include "cc/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/suite.hpp"

namespace {

using namespace afforest;
using NodeID = std::int32_t;

void BM_LinkFreshSingletons(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto comp = identity_labels<NodeID>(n);
    state.ResumeTiming();
    for (std::int64_t v = 1; v < n; ++v)
      link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
    benchmark::DoNotOptimize(comp.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_LinkFreshSingletons)->Range(1 << 10, 1 << 16);

void BM_LinkAlreadyConverged(benchmark::State& state) {
  // The Table II insight: validating a converged tree costs ~1 iteration.
  const std::int64_t n = state.range(0);
  auto comp = identity_labels<NodeID>(n);
  for (std::int64_t v = 1; v < n; ++v)
    link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
  compress_all(comp);
  for (auto _ : state) {
    for (std::int64_t v = 1; v < n; ++v)
      link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), comp);
    benchmark::DoNotOptimize(comp.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_LinkAlreadyConverged)->Range(1 << 10, 1 << 16);

void BM_CompressShallowForest(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto base = identity_labels<NodeID>(n);
  for (std::int64_t v = 1; v < n; ++v)
    link(static_cast<NodeID>(v - 1), static_cast<NodeID>(v), base);
  compress_all(base);
  for (auto _ : state) {
    state.PauseTiming();
    auto comp = base.clone();
    state.ResumeTiming();
    compress_all(comp);
    benchmark::DoNotOptimize(comp.data());
  }
}
BENCHMARK(BM_CompressShallowForest)->Range(1 << 10, 1 << 16);

void BM_SampleFrequentElement(benchmark::State& state) {
  pvector<NodeID> comp(1 << 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sample_frequent_element(comp, static_cast<std::int32_t>(state.range(0))));
  }
}
BENCHMARK(BM_SampleFrequentElement)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BuildCSR(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto edges = generate_uniform_edges<NodeID>(n, 8 * n, 1);
  for (auto _ : state) {
    auto g = build_undirected(edges, n);
    benchmark::DoNotOptimize(g.num_stored_edges());
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_BuildCSR)->Range(1 << 10, 1 << 15);

void BM_FullAlgorithm(benchmark::State& state, const char* algo_name) {
  static const Graph g = make_suite_graph("kron", 14);
  const auto& algo = cc_algorithm(algo_name);
  for (auto _ : state) {
    auto labels = algo.run(g);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK_CAPTURE(BM_FullAlgorithm, afforest, "afforest");
BENCHMARK_CAPTURE(BM_FullAlgorithm, afforest_noskip, "afforest-noskip");
BENCHMARK_CAPTURE(BM_FullAlgorithm, sv, "sv");
BENCHMARK_CAPTURE(BM_FullAlgorithm, dobfs, "dobfs");

// Console reporter that additionally collects each run as a JsonRecord
// (graph="micro", algorithm=benchmark name, median = per-iteration real
// seconds).  google-benchmark reports one aggregate Run per benchmark by
// default, so min/p25/p75/max collapse onto the same value.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      const double per_iter_s =
          r.iterations > 0
              ? r.real_accumulated_time / static_cast<double>(r.iterations)
              : 0.0;
      TrialSummary t;
      t.median_s = t.p25_s = t.p75_s = t.min_s = t.max_s = per_iter_s;
      t.trials = 1;
      bench::JsonRecord rec;
      rec.graph = "micro";
      rec.algorithm = r.benchmark_name();
      rec.params = {
          {"iterations",
           static_cast<std::int64_t>(r.iterations)},
          {"items_per_second",
           r.counters.find("items_per_second") != r.counters.end()
               ? static_cast<double>(r.counters.at("items_per_second"))
               : 0.0}};
      rec.trials = t;
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<bench::JsonRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  // Extract --json <path> / --json=<path> before handing the rest to
  // google-benchmark (which rejects unknown flags).
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;

  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty() &&
      !afforest::bench::emit_json(json_path, "micro_primitives",
                                  reporter.records))
    return 1;
  return 0;
}
