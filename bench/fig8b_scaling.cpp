// Reproduces Fig 8b: strong scaling of SV, DOBFS-CC, and Afforest (with
// and without component skipping) on the web graph as the thread count
// grows.
//
// NOTE: the paper ran 2x10-core machines; on a single-core host the curves
// will be flat (the harness still sweeps omp thread counts and reports
// speedup over the 1-thread run, so on multi-core hosts the paper's
// 4.8-6.2x @ 20-core shape appears).
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "graph/generators/suite.hpp"
#include "util/platform.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("graph", "suite graph (default web)");
  cl.describe("trials", "timing trials per point (default 5)");
  cl.describe("max-threads", "largest thread count (default hw threads)");
  bench::JsonReporter json(cl, "fig8b_scaling");
  if (!bench::standard_preamble(cl, "Fig 8b: strong scaling on the web graph"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const std::string graph_name = cl.get_string("graph", "web");
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  const int max_threads =
      static_cast<int>(cl.get_int("max-threads", hardware_threads()));
  bench::warn_unknown_flags(cl);

  const Graph g = make_suite_graph(graph_name, scale);
  std::cout << "graph=" << graph_name << " V=" << g.num_nodes()
            << " E=" << g.num_edges() << "\n\n";

  const std::vector<std::string> algos = {"sv", "dobfs", "afforest",
                                          "afforest-noskip"};
  const int original_threads = num_threads();

  TextTable table({"threads", "sv ms", "dobfs ms", "afforest ms",
                   "afforest-noskip ms"});
  std::vector<double> base_ms(algos.size(), 0);
  for (int t = 1; t <= max_threads; t *= 2) {
    set_num_threads(t);
    std::vector<std::string> row{TextTable::fmt_int(t)};
    for (std::size_t i = 0; i < algos.size(); ++i) {
      const auto& algo = cc_algorithm(algos[i]);
      const auto summary = bench::time_trials([&] { algo.run(g); }, trials);
      const double ms = summary.median_s * 1e3;
      if (t == 1) base_ms[i] = ms;
      row.push_back(TextTable::fmt(ms, 2) + " (" +
                    TextTable::fmt(base_ms[i] / ms, 2) + "x)");
      json.add(graph_name, algo.name,
               {{"scale", scale}, {"threads", t}, {"trials", trials}},
               summary);
    }
    table.add_row(std::move(row));
  }
  set_num_threads(original_threads);
  table.print(std::cout);
  std::cout << "\nexpected shape (multi-core host): all algorithms scale; "
               "paper saw 4.8x (SV) to 6.2x (Afforest-noskip) at 20 cores.\n";
  return 0;
}
