// Distributed-memory feasibility study (§VII future work): BSP-partitioned
// CC across simulated ranks.  For each suite graph and rank count the
// table reports communication volume (boundary edges), the post-local-work
// quotient size, and end-to-end time — showing that local subgraph
// processing collapses each block before any exchange, the property that
// makes a distributed Afforest attractive.
#include <iostream>

#include "bench/harness.hpp"
#include "dist/partitioned_cc.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("trials", "timing trials per cell (default 3)");
  bench::JsonReporter json(cl, "distributed");
  if (!bench::standard_preamble(
          cl, "distributed simulation: communication vs rank count"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const int trials = static_cast<int>(cl.get_int("trials", 3));
  bench::warn_unknown_flags(cl);

  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    std::cout << "graph=" << entry.name << " V=" << g.num_nodes()
              << " E=" << g.num_edges() << "\n";
    TextTable table({"ranks", "boundary edges", "comm %", "quotient V",
                     "quotient E", "median ms"});
    for (int parts : {1, 2, 4, 8, 16, 64}) {
      PartitionedCCStats stats;
      partitioned_cc(g, parts, &stats);
      const auto t = bench::time_trials(
          [&] { partitioned_cc(g, parts); }, trials);
      table.add_row({TextTable::fmt_int(parts),
                     TextTable::fmt_int(stats.boundary_edges),
                     TextTable::fmt(100.0 * stats.communication_fraction(), 1),
                     TextTable::fmt_int(stats.quotient_vertices),
                     TextTable::fmt_int(stats.quotient_edges),
                     TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(entry.name, "partitioned-cc",
               {{"scale", scale},
                {"trials", trials},
                {"ranks", parts},
                {"boundary_edges", stats.boundary_edges},
                {"quotient_vertices", stats.quotient_vertices},
                {"quotient_edges", stats.quotient_edges}},
               t);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: quotient << boundary edges (local work "
               "collapses blocks); road-class graphs cut few edges.\n";
  return 0;
}
