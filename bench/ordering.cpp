// Vertex-ordering ablation: Invariant 1 (π(x) ≤ x) makes tree roots
// index-determined, so the same graph under different vertex numberings
// exercises link differently.  This bench relabels each suite graph three
// ways — hubs-first (friendly), hubs-last (adversarial flavor), random —
// and compares Afforest and SV runtimes against the native ordering.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "graph/generators/suite.hpp"
#include "graph/permute.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "timing trials per cell (default 5)");
  cl.describe("graph", "suite graph (default kron)");
  bench::JsonReporter json(cl, "ordering");
  if (!bench::standard_preamble(cl, "ordering ablation: vertex numbering vs "
                                    "runtime"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  const std::string graph_name = cl.get_string("graph", "kron");
  bench::warn_unknown_flags(cl);

  const Graph native = make_suite_graph(graph_name, scale);
  std::cout << "graph=" << graph_name << " V=" << native.num_nodes()
            << " E=" << native.num_edges() << "\n\n";

  struct Variant {
    const char* name;
    Graph graph;
  };
  std::vector<Variant> variants;
  variants.push_back({"native", make_suite_graph(graph_name, scale)});
  variants.push_back(
      {"hubs-first", relabel(native, degree_descending_permutation(native))});
  variants.push_back(
      {"hubs-last", relabel(native, degree_ascending_permutation(native))});
  variants.push_back(
      {"random",
       relabel(native, random_permutation<std::int32_t>(native.num_nodes(),
                                                        11))});

  TextTable table({"ordering", "afforest ms", "sv ms", "dobfs ms"});
  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (const char* algo : {"afforest", "sv", "dobfs"}) {
      const auto& entry = cc_algorithm(algo);
      const auto t =
          bench::time_trials([&] { entry.run(variant.graph); }, trials);
      row.push_back(TextTable::fmt(t.median_s * 1e3, 2));
      json.add(graph_name, algo,
               {{"scale", scale}, {"trials", trials},
                {"ordering", variant.name}}, t);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: hubs-first is the friendliest ordering for "
               "tree hooking; hubs-last costs extra root walks.\n";
  return 0;
}
