// Streaming decremental workload over src/serve's DynamicCC: batched
// deletions and sliding-window expiry (docs/STREAMING.md).
//
// Three phases on a uniform-random stream:
//
//   1. ingest — insert the full edge list in batches (forest maintained);
//   2. delete-free — delete every surviving NON-TREE edge, then re-insert
//      it, per trial.  By the spanning-forest certificate these deletions
//      are all O(1)-free and the rebuild path must NEVER fire: the binary
//      exits nonzero if dynamic_rebuilds != 0 here, and the JSON record's
//      counter is asserted again by scripts/perf_smoke.sh.  Compute-bound
//      and steady-state (the delete+reinsert cycle restores the graph), so
//      this is the anchor-normalized record the perf-smoke gate tracks;
//   3. window — a WindowedStream pushes batches through a W-batch window
//      (expiry = deletion, tree cuts and rebuilds included) and then drains
//      to empty.  Scheduler- and shape-sensitive, so its records ride along
//      as unanchored notes with the full dynamic_* counter set attached.
//
// With --wal-dir DIR a fourth, opt-in phase measures the durability tax
// (docs/ROBUSTNESS.md): the same batched ingest with journaling off
// (plain DynamicCC) vs on (DurableEngine, WalSync::kNone so the gate
// tracks the WAL code path — framing + CRC + write — not the disk), then
// times recovery of the journaled directory and reports the replay
// counters.  scripts/perf_smoke.sh gates the on/off median ratio.
//
// With --json the run emits afforest-bench-1 records in three groups:
//   * graph "stream-urand" — "serial-uf" anchor + "stream-delete-free"
//     (gated; counters must show dynamic_rebuilds == 0);
//   * graph "stream-urand-window" — "stream-window-tick" and
//     "stream-window-drain" notes;
//   * graph "stream-urand-wal" (only with --wal-dir) — "stream-ingest",
//     "stream-ingest-wal" (wal_records/bytes_appended counters), and
//     "stream-recovery" (wal_records_replayed counter).
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/durable_engine.hpp"
#include "serve/dynamic_cc.hpp"
#include "serve/windowed_stream.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using afforest::EdgeList;
using afforest::Timer;
using NodeID = std::int32_t;
using Engine = afforest::serve::DynamicCC<NodeID>;

/// Slices `edges` into consecutive batches of `batch` edges.
std::vector<EdgeList<NodeID>> slice_batches(const EdgeList<NodeID>& edges,
                                            std::size_t batch) {
  std::vector<EdgeList<NodeID>> out;
  for (std::size_t start = 0; start < edges.size(); start += batch) {
    EdgeList<NodeID> b;
    for (std::size_t i = start; i < std::min(edges.size(), start + batch); ++i)
      b.push_back(edges[i]);
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "repetitions per phase (default 3)");
  cl.describe("degree", "average degree of the streamed graph (default 8)");
  cl.describe("batch", "edges per stream batch (default 1024)");
  cl.describe("window", "resident batches in the sliding window (default 4)");
  cl.describe("seed", "stream RNG seed (default 42)");
  cl.describe("wal-dir",
              "directory for the WAL-overhead phase (default: skip it)");
  bench::JsonReporter json(cl, "streaming");
  if (!bench::standard_preamble(
          cl, "Streaming: batched deletions + sliding-window expiry"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 3));
  const int degree = static_cast<int>(cl.get_int("degree", 8));
  const std::int64_t batch = cl.get_int("batch", 1024);
  const std::int64_t window = cl.get_int("window", 4);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  const std::string wal_dir = cl.get_string("wal-dir", "");
  bench::warn_unknown_flags(cl);
  if (batch <= 0 || window <= 0) {
    std::cerr << "streaming: --batch and --window must be positive\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const EdgeList<NodeID> edges = generate_uniform_edges<NodeID>(n, m, seed);
  const std::string graph = "stream-urand";
  const std::string window_graph = "stream-urand-window";
  std::cout << "graph=" << graph << " V=" << n << " E=" << m
            << " batch=" << batch << " window=" << window << "\n\n";

  // Ratio-mode anchor: serial union-find over the same edge list.
  const auto anchor_summary =
      bench::time_trials([&] { union_find_cc(edges, n); }, trials);
  if (json.collect())
    json.add(graph, "serial-uf", {{"scale", scale}, {"trials", trials}},
             anchor_summary);

  // ---- phase 1: ingest (forest maintenance included) ----------------------
  Engine engine(n);
  Timer ingest;
  ingest.start();
  serve::InsertStats ins_total;
  for (std::size_t start = 0; start < edges.size();
       start += static_cast<std::size_t>(batch)) {
    const auto count = std::min(static_cast<std::size_t>(batch),
                                edges.size() - start);
    const auto s = engine.apply_inserts(edges.data() + start, count);
    ins_total.requested += s.requested;
    ins_total.duplicates += s.duplicates;
    ins_total.self_loops += s.self_loops;
    ins_total.tree_edges += s.tree_edges;
    engine.publish();
  }
  ingest.stop();
  std::cout << "ingest: " << m << " edges in "
            << TextTable::fmt(ingest.seconds() * 1e3, 2) << " ms ("
            << ins_total.tree_edges << " tree, "
            << engine.num_edges() - engine.num_tree_edges()
            << " non-tree surviving)\n";

  // ---- phase 2: delete-free (gated; rebuilds MUST stay 0) -----------------
  const EdgeList<NodeID> free_edges = engine.non_tree_edges();
  serve::DeleteStats free_stats;
  const auto delete_free_cycle = [&] {
    free_stats = engine.apply_deletes(free_edges);
    engine.apply_inserts(free_edges);  // restore for the next trial
  };
  const TrialSummary free_summary =
      bench::time_trials(delete_free_cycle, trials);
  std::cout << "delete-free: " << free_edges.size()
            << " non-tree deletions (+reinsert) in "
            << TextTable::fmt(free_summary.median_s * 1e3, 2)
            << " ms median — " << serve::delete_stats_summary(free_stats)
            << "\n";
  if (free_stats.rebuild_components != 0 || free_stats.cut_tree_edges != 0) {
    std::cerr << "streaming: FATAL: non-tree deletions triggered "
              << free_stats.rebuild_components << " rebuild(s) / "
              << free_stats.cut_tree_edges
              << " tree cut(s); the certification is broken\n";
    return 1;
  }
  if (json.collect()) {
    const telemetry::Report report =
        bench::measure_counters(delete_free_cycle);
    if (report.counters.dynamic_rebuilds != 0) {
      std::cerr << "streaming: FATAL: telemetry counted "
                << report.counters.dynamic_rebuilds
                << " rebuild(s) on the delete-free pass\n";
      return 1;
    }
    json.add(graph, "stream-delete-free",
             {{"scale", scale},
              {"trials", trials},
              {"batch", batch},
              {"free_edges", static_cast<std::int64_t>(free_edges.size())}},
             free_summary, report);
  }

  // ---- phase 3: sliding window (expiry = deletion, rebuilds expected) -----
  const auto batches = slice_batches(edges, static_cast<std::size_t>(batch));
  const auto run_window = [&](std::vector<double>* tick_samples,
                              serve::DeleteStats* expired_total,
                              double* drain_seconds) {
    Engine w_engine(n);
    serve::WindowedStream<NodeID> stream(
        w_engine, static_cast<std::size_t>(window));
    for (const auto& b : batches) {
      Timer t;
      t.start();
      const auto expired = stream.push(b.clone());
      t.stop();
      if (tick_samples != nullptr) tick_samples->push_back(t.seconds());
      if (expired_total != nullptr) *expired_total += expired;
    }
    Timer d;
    d.start();
    const auto drained = stream.drain();
    d.stop();
    if (expired_total != nullptr) *expired_total += drained;
    if (drain_seconds != nullptr) *drain_seconds = d.seconds();
    return w_engine.num_edges();
  };

  std::vector<double> tick_samples;
  std::vector<double> drain_samples;
  serve::DeleteStats expired_total;
  std::int64_t leftover = 0;
  for (int t = 0; t < std::max(1, trials); ++t) {
    double drain_s = 0;
    leftover = run_window(&tick_samples, t == 0 ? &expired_total : nullptr,
                          &drain_s);
    drain_samples.push_back(drain_s);
  }
  if (leftover != 0) {
    std::cerr << "streaming: FATAL: " << leftover
              << " edge(s) survived a full drain\n";
    return 1;
  }
  TextTable table({"ticks", "tick p50 ms", "tick p95 ms", "drain ms",
                   "freed", "cut", "rebuilds", "rebuilt verts"});
  table.add_row({std::to_string(batches.size()),
                 TextTable::fmt(percentile(tick_samples, 50) * 1e3, 3),
                 TextTable::fmt(percentile(tick_samples, 95) * 1e3, 3),
                 TextTable::fmt(median(drain_samples) * 1e3, 2),
                 std::to_string(expired_total.freed),
                 std::to_string(expired_total.cut_tree_edges),
                 std::to_string(expired_total.rebuild_components),
                 std::to_string(expired_total.rebuild_vertices)});
  table.print(std::cout);

  if (json.collect()) {
    const telemetry::Report report = bench::measure_counters(
        [&] { run_window(nullptr, nullptr, nullptr); });
    const std::vector<bench::Param> params = {
        {"scale", scale},
        {"trials", trials},
        {"batch", batch},
        {"window", window},
        {"ticks", static_cast<std::int64_t>(batches.size())}};
    json.add(window_graph, "stream-window-tick", params,
             summarize_trials(tick_samples), report);
    json.add(window_graph, "stream-window-drain", params,
             summarize_trials(drain_samples), report);
  }

  // ---- phase 4 (opt-in): WAL durability tax + recovery replay -------------
  if (!wal_dir.empty()) {
    namespace fs = std::filesystem;
    const std::string wal_graph = "stream-urand-wal";
    const fs::path durable_dir = fs::path(wal_dir) / "streaming-wal";
    fs::create_directories(wal_dir);  // the engine makes only the leaf dir
    serve::DurableOptions opts;
    opts.dir = durable_dir.string();
    opts.sync = serve::WalSync::kNone;  // measure the code path, not the disk

    // Both sides run the identical batch schedule through the identical
    // apply path (insert + publish per batch); the only difference is the
    // journaling in front of it — exactly the overhead the gate bounds.
    const auto plain_ingest = [&] {
      Engine e(n);
      for (const auto& b : batches) {
        e.apply_inserts(b);
        e.publish();
      }
    };
    const auto durable_ingest = [&] {
      serve::DurableEngine<NodeID> e(n, opts);
      for (const auto& b : batches) e.insert(b);
    };

    std::vector<double> off_samples;
    std::vector<double> on_samples;
    for (int t = 0; t < std::max(1, trials); ++t) {
      Timer timer;
      timer.start();
      plain_ingest();
      timer.stop();
      off_samples.push_back(timer.seconds());
      fs::remove_all(durable_dir);  // fresh bootstrap, outside the clock
      timer.start();
      durable_ingest();
      timer.stop();
      on_samples.push_back(timer.seconds());
    }

    // Recovery: reopen the directory the last sample left behind.  The
    // open replays the whole WAL (no checkpoint was cut), so this times
    // the full journal-to-state path; reopening is read-only, hence
    // repeatable per trial.
    std::vector<double> recovery_samples;
    serve::RecoveryStats recovery{};
    for (int t = 0; t < std::max(1, trials); ++t) {
      Timer timer;
      timer.start();
      serve::DurableEngine<NodeID> e(n, opts);
      timer.stop();
      recovery_samples.push_back(timer.seconds());
      recovery = e.recovery_stats();
    }

    const double off_ms = median(off_samples) * 1e3;
    const double on_ms = median(on_samples) * 1e3;
    std::cout << "\nwal: ingest off " << TextTable::fmt(off_ms, 2)
              << " ms / on " << TextTable::fmt(on_ms, 2)
              << " ms median (overhead x"
              << TextTable::fmt(off_ms > 0 ? on_ms / off_ms : 0.0, 3)
              << "); recovery "
              << TextTable::fmt(median(recovery_samples) * 1e3, 2) << " ms, "
              << recovery.wal_records_replayed << " records replayed ("
              << recovery.wal_torn_bytes << " torn bytes)\n";

    if (json.collect()) {
      const std::vector<bench::Param> wal_params = {
          {"scale", scale},
          {"trials", trials},
          {"batch", batch},
          {"sync", std::string("none")}};
      json.add(wal_graph, "stream-ingest", wal_params,
               summarize_trials(off_samples));
      fs::remove_all(durable_dir);
      const telemetry::Report on_report =
          bench::measure_counters(durable_ingest);
      json.add(wal_graph, "stream-ingest-wal", wal_params,
               summarize_trials(on_samples), on_report);
      const telemetry::Report recovery_report = bench::measure_counters(
          [&] { serve::DurableEngine<NodeID> e(n, opts); });
      json.add(wal_graph, "stream-recovery", wal_params,
               summarize_trials(recovery_samples), recovery_report);
    }
    fs::remove_all(durable_dir);
  }

  std::cout << "\nexpected shape: non-tree deletions are O(1)-certified "
               "(rebuilds = 0 on the delete-free pass); window expiry pays "
               "for rebuilds only when a cut tree edge actually splits a "
               "component.\n";
  return 0;
}
