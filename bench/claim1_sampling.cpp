// Empirical check of §IV-B (Claim 1 + Frieze et al.): on a random
// d-regular graph, independently sampling edges with p = (1+eps)/d yields
// a subgraph with O(n) edges that almost surely contains a Theta(n)
// connected component — the theoretical basis for sampling-based CC.
//
// The table sweeps eps around the threshold: below eps=0 (p < 1/d) the
// giant component collapses; above, it covers most of the graph while the
// sampled edge count stays ~(1+eps)n/2.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/regular.hpp"
#include "graph/sample.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("degree", "regular degree d (default 16)");
  bench::JsonReporter json(cl, "claim1_sampling");
  if (!bench::standard_preamble(
          cl, "Claim 1 (SecIV-B): giant component under p=(1+eps)/d sampling"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const auto d = cl.get_int("degree", 16);
  bench::warn_unknown_flags(cl);

  const std::int64_t n = std::int64_t{1} << scale;
  const Graph g = build_undirected(generate_regular_edges<std::int32_t>(n, d, 5), n);
  std::cout << "d-regular graph: V=" << g.num_nodes() << " E=" << g.num_edges()
            << " d=" << d << "\n\n";

  TextTable table({"eps", "p", "sampled edges", "edges / n", "giant frac"});
  for (double eps : {-0.5, -0.25, 0.0, 0.25, 0.5, 1.0, 2.0}) {
    const double p = (1.0 + eps) / static_cast<double>(d);
    const auto sampled = uniform_edge_sample(g, p, 17);
    const Graph gs = build_undirected(sampled, n);
    const auto s = summarize_components(union_find_cc(gs));
    table.add_row({TextTable::fmt(eps, 2), TextTable::fmt(p, 4),
                   TextTable::fmt_int(static_cast<long long>(sampled.size())),
                   TextTable::fmt(static_cast<double>(sampled.size()) /
                                      static_cast<double>(n), 2),
                   TextTable::fmt(s.largest_fraction, 3)});
    json.add("regular", "uniform-edge-sample",
             {{"scale", scale},
              {"degree", d},
              {"eps", eps},
              {"p", p},
              {"sampled_edges", static_cast<std::int64_t>(sampled.size())},
              {"giant_fraction", s.largest_fraction}},
             TrialSummary{});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: giant fraction collapses for eps<0, grows "
               "toward 1 for eps>0, while edges stay O(n).\n";
  return 0;
}
