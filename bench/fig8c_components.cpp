// Reproduces Fig 8c: runtime vs average component fraction f on uniformly
// random graphs with |V|·f-sized components.
//
// Expected shape: BFS-based CC (bfs, dobfs) serializes per component, so
// runtime grows as f shrinks (more components); SV and Afforest are flat;
// DOBFS is fastest near f=1 (few giant components, bottom-up shines);
// Afforest's skip heuristic keeps it competitive there.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators/component_mix.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("degree", "average degree of each component (default 8)");
  cl.describe("trials", "timing trials per point (default 5)");
  bench::JsonReporter json(cl, "fig8c_components");
  if (!bench::standard_preamble(
          cl, "Fig 8c: runtime vs component fraction (urand-mix sweep)"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const double degree = cl.get_double("degree", 8.0);
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  bench::warn_unknown_flags(cl);

  const std::int64_t n = std::int64_t{1} << scale;
  const std::vector<std::string> algos = {"sv", "lp", "bfs", "dobfs",
                                          "afforest", "afforest-noskip"};
  TextTable table({"f", "components", "sv ms", "lp ms", "bfs ms", "dobfs ms",
                   "afforest ms", "afforest-noskip ms"});
  // f sweeps decades from one giant component down to many tiny ones;
  // the smallest f keeps components above ~32 vertices.
  for (double f : {1.0, 0.5, 0.1, 0.01, 0.001}) {
    if (static_cast<double>(n) * f < 2) continue;
    const Graph g = build_undirected(
        generate_component_mix_edges<std::int32_t>(n, degree, f, 7), n);
    std::vector<std::string> row{
        TextTable::fmt(f, 3),
        TextTable::fmt_int(static_cast<long long>(1.0 / f))};
    for (const auto& name : algos) {
      const auto& algo = cc_algorithm(name);
      const auto summary = bench::time_trials([&] { algo.run(g); }, trials);
      row.push_back(TextTable::fmt(summary.median_s * 1e3, 2));
      json.add("component-mix", algo.name,
               {{"scale", scale},
                {"degree", degree},
                {"fraction", f},
                {"trials", trials}},
               summary);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: bfs/dobfs grow as f shrinks; sv/afforest "
               "flat; dobfs fastest near f=1; skip helps afforest there.\n";
  return 0;
}
