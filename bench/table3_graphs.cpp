// Reproduces Table III: the evaluated graph suite and its statistics
// (|V|, |E|, average degree, number of components, giant-component share).
// Our suite substitutes synthetic models for the paper's real datasets
// (DESIGN.md §3); this table documents the substituted graphs' shapes.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"
#include "graph/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count per graph (default 14)");
  bench::JsonReporter json(cl, "table3_graphs");
  if (!bench::standard_preamble(cl, "Table III: graph suite statistics"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  bench::warn_unknown_flags(cl);

  TextTable table({"graph", "V", "E", "avg deg", "max deg", "components",
                   "cmax %", "approx diam", "models"});
  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    const auto deg = compute_degree_stats(g);
    const auto comp = summarize_components(union_find_cc(g));
    table.add_row({entry.name, TextTable::fmt_int(deg.num_nodes),
                   TextTable::fmt_int(deg.num_edges),
                   TextTable::fmt(deg.average_degree, 2),
                   TextTable::fmt_int(deg.max_degree),
                   TextTable::fmt_int(comp.num_components),
                   TextTable::fmt(100.0 * comp.largest_fraction, 1),
                   TextTable::fmt_int(approximate_diameter(g)),
                   entry.description});
    json.add(entry.name, "suite-stats",
             {{"scale", scale},
              {"num_nodes", deg.num_nodes},
              {"num_edges", deg.num_edges},
              {"average_degree", deg.average_degree},
              {"max_degree", deg.max_degree},
              {"components", comp.num_components},
              {"largest_fraction", comp.largest_fraction},
              {"approx_diameter", approximate_diameter(g)}},
             TrialSummary{});
  }
  table.print(std::cout);
  return 0;
}
