// Edge-work accounting across the suite (§IV-D quantified): how many edges
// the neighbor-sampling rounds process, how many the final phase still
// touches, and how many the large-component skip avoids entirely.
#include <iostream>

#include "analysis/work_counter.hpp"
#include "bench/harness.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count per graph (default 15)");
  bench::JsonReporter json(cl, "work_stats");
  if (!bench::standard_preamble(
          cl, "edge-work accounting: sampled / final / skipped per graph"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  bench::warn_unknown_flags(cl);

  TextTable table({"graph", "stored edges", "sampled", "final", "skipped",
                   "skipped %", "skipped vertices"});
  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    const auto stats = afforest_with_work_stats(g);
    table.add_row(
        {entry.name, TextTable::fmt_int(g.num_stored_edges()),
         TextTable::fmt_int(stats.sampled_edges),
         TextTable::fmt_int(stats.final_edges),
         TextTable::fmt_int(stats.skipped_edges),
         TextTable::fmt(100.0 * stats.skip_fraction(g.num_stored_edges()), 1),
         TextTable::fmt_int(stats.skipped_vertices)});
    json.add(entry.name, "afforest",
             {{"scale", scale},
              {"stored_edges", g.num_stored_edges()},
              {"sampled_edges", stats.sampled_edges},
              {"final_edges", stats.final_edges},
              {"skipped_edges", stats.skipped_edges},
              {"skipped_vertices", stats.skipped_vertices}},
             TrialSummary{});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: giant-component graphs (urand, web, road) "
               "skip the large majority of stored edges.\n";
  return 0;
}
