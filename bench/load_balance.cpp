// Load-balancing ablation (the CPU rendition of §VI-B's representation
// discussion): vertex-scheduled Afforest vs chunk-scheduled
// afforest_balanced vs edge-list SV, on skewed (kron, twitter) and uniform
// (road, urand) degree distributions, sweeping the chunk size.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "exec/chunked.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("trials", "timing trials per cell (default 5)");
  bench::JsonReporter json(cl, "load_balance");
  if (!bench::standard_preamble(
          cl, "load-balancing: vertex vs chunk scheduling vs edge list"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  bench::warn_unknown_flags(cl);

  for (const auto* name : {"kron", "twitter", "urand", "road"}) {
    const Graph g = make_suite_graph(name, scale);
    std::cout << "graph=" << name << " V=" << g.num_nodes()
              << " E=" << g.num_edges() << "\n";
    TextTable table({"scheduler", "median ms"});
    {
      const auto& algo = cc_algorithm("afforest");
      const auto t = bench::time_trials([&] { algo.run(g); }, trials);
      table.add_row({"vertex-parallel", TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(name, "afforest",
               {{"scale", scale}, {"trials", trials},
                {"scheduler", "vertex-parallel"}}, t);
    }
    for (std::int64_t chunk : {16, 64, 256, 1024}) {
      const auto t = bench::time_trials(
          [&] { afforest_balanced(g, {}, chunk); }, trials);
      table.add_row({"chunked (" + std::to_string(chunk) + ")",
                     TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(name, "afforest-balanced",
               {{"scale", scale}, {"trials", trials},
                {"scheduler", "chunked"}, {"chunk", chunk}}, t);
    }
    {
      const auto& algo = cc_algorithm("sv-edgelist");
      const auto t = bench::time_trials([&] { algo.run(g); }, trials);
      table.add_row({"edge-list SV", TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(name, "sv-edgelist",
               {{"scale", scale}, {"trials", trials},
                {"scheduler", "edge-list"}}, t);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape (multi-core host): chunking helps skewed "
               "graphs' final phase; uniform-degree graphs see overhead "
               "only.\n";
  return 0;
}
