// Per-phase time breakdown of Afforest across the suite: how the budget
// splits between init, sampling rounds, compress passes, the giant-
// component search, and the (mostly skipped) final link phase.
#include <iostream>

#include "bench/harness.hpp"
#include "cc/afforest_timed.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count per graph (default 15)");
  cl.describe("trials", "runs per graph, minimum-of reported (default 5)");
  cl.describe("csv", "emit CSV instead of the text table");
  bench::JsonReporter json(cl, "phase_breakdown");
  if (!bench::standard_preamble(cl, "Afforest phase-time breakdown"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  const bool csv = cl.get_bool("csv", false);
  bench::warn_unknown_flags(cl);

  TextTable table({"graph", "init ms", "sampling ms", "compress ms",
                   "find ms", "final link ms", "total ms", "final %"});
  for (const auto& entry : graph_suite_entries()) {
    const Graph g = make_suite_graph(entry.name, scale);
    AfforestPhaseTimes best;
    double best_total = 1e30;
    for (int t = 0; t < trials; ++t) {
      AfforestPhaseTimes times;
      afforest_timed(g, times);
      if (times.total_s() < best_total) {
        best_total = times.total_s();
        best = times;
      }
    }
    table.add_row({entry.name, TextTable::fmt(best.init_s * 1e3, 3),
                   TextTable::fmt(best.sampling_s * 1e3, 3),
                   TextTable::fmt(best.compress_s * 1e3, 3),
                   TextTable::fmt(best.find_component_s * 1e3, 3),
                   TextTable::fmt(best.final_link_s * 1e3, 3),
                   TextTable::fmt(best.total_s() * 1e3, 3),
                   TextTable::fmt(100.0 * best.final_link_s /
                                      std::max(1e-12, best.total_s()), 1)});
    if (json.collect()) {
      // params holds only true inputs (bench_compare.py keys records on
      // (graph, algorithm, params), so measured values here would make
      // every record unmatchable between runs).  Per-phase wall times
      // travel in the telemetry `phases` array instead — afforest_timed
      // records each phase via telemetry::record_phase.
      json.add(entry.name, "afforest-timed",
               {{"scale", scale}, {"trials", trials}},
               TrialSummary{},
               bench::measure_counters([&] {
                 AfforestPhaseTimes times;
                 afforest_timed(g, times);
               }));
    }
  }
  if (csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\nexpected shape: on giant-component graphs the final link "
               "phase is a small share of the total (skipping works).\n";
  return 0;
}
