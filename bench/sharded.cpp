// Mixed read/write workload over the sharded serving tier, swept across
// shard counts.
//
// One coordinator writer streams a uniform-random edge list through
// ShardedEngine (route + publish per batch) while R reader threads issue
// SoA query batches against the published cross-shard atoms.  The sweep
// varies the shard count — the knob the tier adds — holding the workload
// fixed, so the table shows what sharding costs (quotient maintenance,
// per-shard publish fan-out) and what it buys (smaller per-shard forests).
//
// With --json the run emits afforest-bench-1 records in two groups:
//
//   * graph "shard-urand" — a "serial-uf" anchor plus "shard-query-steady"
//     (a query batch answered against the final atom, no concurrent
//     writer, at the default shard count).  Compute-bound, so its
//     anchor-normalized ratio is stable across machines: this is the
//     record the perf-smoke gate tracks.
//   * graph "shard-urand-mixed" — per-shard-count "shard-ingest" /
//     "shard-query" records.  Scheduler-interleaving-sensitive, so they
//     carry no anchor and ratio-mode comparison surfaces them as notes.
//
// Counter records carry the tier's telemetry (shard_boundary_msgs,
// shard_quotient_edges, shard_epoch_publishes) — PartitionedCCStats'
// communication-volume quantities, live.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/workload.hpp"
#include "shard/sharded_engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using afforest::EdgeList;
using afforest::Timer;
using afforest::Xoshiro256;
using NodeID = std::int32_t;

struct MixConfig {
  std::int64_t num_nodes = 0;
  int num_shards = 2;
  std::int64_t edge_batch = 1024;
  std::int64_t query_batch = 256;
  int readers = 2;
  double read_fraction = 0.9;
  afforest::serve::Skew skew = afforest::serve::Skew::kUniform;
  double theta = 0.99;
  std::uint64_t seed = 42;
};

struct MixResult {
  double wall_s = 0;
  double ingest_s = 0;
  std::vector<double> batch_latencies_s;
  std::uint64_t queries = 0;
  std::uint64_t epoch_violations = 0;  ///< monotone + unmixed epochs
  std::int64_t components = 0;
};

/// One full mixed phase: the coordinator streams `edges` in batches while
/// readers issue query batches and verify epoch monotonicity plus the
/// no-mixed-epochs invariant on every acquired atom.
MixResult run_mixed(const EdgeList<NodeID>& edges, const MixConfig& cfg) {
  using Engine = afforest::shard::ShardedEngine<NodeID>;
  Engine engine(cfg.num_nodes, cfg.num_shards);
  const std::int64_t m = static_cast<std::int64_t>(edges.size());

  const double f = std::clamp(cfg.read_fraction, 0.0, 0.99);
  const auto target_queries =
      static_cast<std::uint64_t>(static_cast<double>(m) * f / (1.0 - f));

  const afforest::serve::KeySampler sampler(
      cfg.skew, static_cast<std::uint64_t>(cfg.num_nodes), cfg.theta);
  const Xoshiro256 root_rng(cfg.seed);

  MixResult result;
  std::atomic<std::uint64_t> queries_served{0};
  std::atomic<std::uint64_t> epoch_violations{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(std::max(cfg.readers, 1)));

  Timer wall;
  wall.start();

  std::thread writer([&] {
    Timer t;
    t.start();
    for (std::int64_t start = 0; start < m; start += cfg.edge_batch) {
      const auto count =
          static_cast<std::size_t>(std::min(cfg.edge_batch, m - start));
      engine.apply_batch(edges.data() + start, count);
      engine.publish();
    }
    if (m == 0) engine.publish();
    t.stop();
    result.ingest_s = t.seconds();
  });

  std::vector<std::thread> reader_threads;
  reader_threads.reserve(static_cast<std::size_t>(cfg.readers));
  for (int r = 0; r < cfg.readers; ++r) {
    reader_threads.emplace_back([&, r] {
      Xoshiro256 rng = root_rng.split(static_cast<std::uint64_t>(r) + 1);
      afforest::serve::QueryBatch<NodeID> batch;
      std::uint64_t last_epoch = 0;
      while (queries_served.fetch_add(
                 static_cast<std::uint64_t>(cfg.query_batch)) <
             target_queries) {
        // The tier's extra invariant: every shard snapshot in one atom
        // carries the same epoch.
        {
          const auto ref = engine.acquire();
          for (const std::uint64_t e : Engine::shard_epochs(ref))
            if (e != ref.epoch()) epoch_violations.fetch_add(1);
        }
        batch.clear();
        for (std::int64_t i = 0; i < cfg.query_batch; ++i)
          batch.add(static_cast<NodeID>(sampler.next(rng)),
                    static_cast<NodeID>(sampler.next(rng)));
        Timer t;
        t.start();
        engine.answer(batch);
        t.stop();
        latencies[static_cast<std::size_t>(r)].push_back(t.seconds());
        if (batch.epoch < last_epoch) epoch_violations.fetch_add(1);
        last_epoch = batch.epoch;
      }
    });
  }

  writer.join();
  for (auto& t : reader_threads) t.join();
  wall.stop();

  result.wall_s = wall.seconds();
  for (const auto& per_reader : latencies) {
    result.queries += static_cast<std::uint64_t>(per_reader.size()) *
                      static_cast<std::uint64_t>(cfg.query_batch);
    result.batch_latencies_s.insert(result.batch_latencies_s.end(),
                                    per_reader.begin(), per_reader.end());
  }
  result.epoch_violations = epoch_violations.load();
  result.components = engine.component_count();
  return result;
}

std::vector<int> parse_shard_counts(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty())
    throw std::invalid_argument("--shards parsed to an empty list");
  for (const int s : out)
    if (s <= 0) throw std::invalid_argument("--shards entries must be >= 1");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "mixed-phase repetitions per shard count (default 3)");
  cl.describe("degree", "average degree of the streamed graph (default 8)");
  cl.describe("shards", "comma-separated shard-count sweep (default 1,2,4,7)");
  cl.describe("read-fraction",
              "fraction of operations that are queries (default 0.9)");
  cl.describe("skew", "query key distribution: uniform | zipfian");
  cl.describe("theta", "zipfian skew parameter in (0,1) (default 0.99)");
  cl.describe("readers", "number of query threads (default 2)");
  cl.describe("edge-batch", "edges per apply+publish round (default 1024)");
  cl.describe("query-batch", "queries per QueryBatch (default 256)");
  cl.describe("steady-queries",
              "steady-state throughput batch size (default 65536; 0 skips)");
  cl.describe("steady-shards",
              "shard count for the steady-state gate record (default 4)");
  cl.describe("seed", "workload RNG seed (default 42)");
  bench::JsonReporter json(cl, "sharded");
  if (!bench::standard_preamble(
          cl, "Sharded: mixed workload across shard counts"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 3));
  const int degree = static_cast<int>(cl.get_int("degree", 8));
  const std::string shards_csv = cl.get_string("shards", "1,2,4,7");
  const double read_fraction = cl.get_double("read-fraction", 0.9);
  const std::string skew_str = cl.get_string("skew", "uniform");
  const double theta = cl.get_double("theta", 0.99);
  const int readers = static_cast<int>(cl.get_int("readers", 2));
  const std::int64_t edge_batch = cl.get_int("edge-batch", 1024);
  const std::int64_t query_batch = cl.get_int("query-batch", 256);
  const std::int64_t steady_queries = cl.get_int("steady-queries", 1 << 16);
  const int steady_shards = static_cast<int>(cl.get_int("steady-shards", 4));
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  bench::warn_unknown_flags(cl);

  serve::Skew skew;
  std::vector<int> shard_counts;
  try {
    skew = serve::parse_skew(skew_str);
    shard_counts = parse_shard_counts(shards_csv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "sharded: " << e.what() << "\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const EdgeList<NodeID> edges = generate_uniform_edges<NodeID>(n, m, seed);
  const std::string graph = "shard-urand";
  const std::string mixed_graph = "shard-urand-mixed";
  std::cout << "graph=" << graph << " V=" << n << " E=" << m
            << " read_fraction=" << read_fraction << " skew="
            << serve::skew_name(skew) << " readers=" << readers << "\n\n";

  // Ratio-mode anchor: serial union-find over the same edge list.
  const auto anchor_summary =
      bench::time_trials([&] { union_find_cc(edges, n); }, trials);
  if (json.collect())
    json.add(graph, "serial-uf", {{"scale", scale}, {"trials", trials}},
             anchor_summary);

  TextTable table({"shards", "ingest ms", "wall ms", "queries", "kq/s",
                   "lat p50 us", "lat p99 us", "comps"});
  for (const int num_shards : shard_counts) {
    MixConfig cfg;
    cfg.num_nodes = n;
    cfg.num_shards = num_shards;
    cfg.edge_batch = edge_batch;
    cfg.query_batch = query_batch;
    cfg.readers = readers;
    cfg.read_fraction = read_fraction;
    cfg.skew = skew;
    cfg.theta = theta;
    cfg.seed = seed;

    std::vector<double> ingest_times;
    std::vector<double> all_latencies;
    MixResult last;
    for (int t = 0; t < std::max(1, trials); ++t) {
      last = run_mixed(edges, cfg);
      ingest_times.push_back(last.ingest_s);
      all_latencies.insert(all_latencies.end(),
                           last.batch_latencies_s.begin(),
                           last.batch_latencies_s.end());
      if (last.epoch_violations != 0) {
        std::cerr << "sharded: FATAL: observed " << last.epoch_violations
                  << " epoch consistency violation(s)\n";
        return 1;
      }
    }

    const double qps =
        last.wall_s > 0 ? static_cast<double>(last.queries) / last.wall_s : 0;
    table.add_row(
        {std::to_string(num_shards),
         TextTable::fmt(median(ingest_times) * 1e3, 2),
         TextTable::fmt(last.wall_s * 1e3, 2), std::to_string(last.queries),
         TextTable::fmt(qps / 1e3, 1),
         TextTable::fmt(percentile(all_latencies, 50) * 1e6, 1),
         TextTable::fmt(percentile(all_latencies, 99) * 1e6, 1),
         std::to_string(last.components)});

    if (json.collect()) {
      const std::vector<bench::Param> params = {
          {"scale", scale},
          {"trials", trials},
          {"shards", num_shards},
          {"edge_batch", edge_batch},
          {"query_batch", query_batch},
          {"readers", readers},
          {"read_fraction", read_fraction},
          {"skew", serve::skew_name(skew)},
          {"theta", theta}};
      // One armed pass captures the shard counters (boundary messages,
      // deduped quotient edges, epoch publishes); timed passes run dark.
      const telemetry::Report report =
          bench::measure_counters([&] { run_mixed(edges, cfg); });
      json.add(mixed_graph, "shard-ingest", params,
               summarize_trials(ingest_times), report);
      json.add(mixed_graph, "shard-query", params,
               summarize_trials(all_latencies), report);
    }
  }
  table.print(std::cout);

  // Steady-state query throughput against the final atom, no concurrent
  // writer: compute-bound, anchor-normalized — the perf-smoke gate record.
  if (steady_queries > 0) {
    shard::ShardedEngine<NodeID> engine(n, steady_shards);
    engine.apply_batch(edges);
    engine.publish();
    const serve::KeySampler sampler(skew, static_cast<std::uint64_t>(n),
                                    theta);
    Xoshiro256 rng = Xoshiro256(seed).split(0xBEEF);
    serve::QueryBatch<NodeID> batch;
    for (std::int64_t i = 0; i < steady_queries; ++i)
      batch.add(static_cast<NodeID>(sampler.next(rng)),
                static_cast<NodeID>(sampler.next(rng)));
    const TrialSummary steady =
        bench::time_trials([&] { engine.answer(batch); }, trials);
    const double mqps =
        steady.median_s > 0
            ? static_cast<double>(steady_queries) / steady.median_s / 1e6
            : 0;
    std::cout << "\nsteady-state (no writer, " << steady_shards
              << " shards): " << steady_queries << " queries in "
              << TextTable::fmt(steady.median_s * 1e3, 2) << " ms median ("
              << TextTable::fmt(mqps, 1) << " Mq/s)\n";
    if (json.collect()) {
      const telemetry::Report report =
          bench::measure_counters([&] { engine.answer(batch); });
      json.add(graph, "shard-query-steady",
               {{"scale", scale},
                {"trials", trials},
                {"steady_queries", steady_queries},
                {"shards", steady_shards},
                {"skew", serve::skew_name(skew)},
                {"theta", theta}},
               steady, report);
    }
  }
  std::cout << "\nexpected shape: ingest cost grows with shard count "
               "(publish fan-out + quotient maintenance) while query "
               "latency stays near-flat — the composition overhead is one "
               "hash lookup per endpoint.\n";
  return 0;
}
