// Ablation studies for the design choices DESIGN.md §6 calls out:
//   1. neighbor_rounds sweep (paper fixes 2; what do 0..8 cost?)
//   2. compress interleaving (disable the per-round compress: tree depth
//      blows up and the final link slows down)
//   3. sample_frequent_element sample count vs skip accuracy
#include <iostream>

#include "analysis/instrumented.hpp"
#include "bench/harness.hpp"
#include "cc/afforest.hpp"
#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"
#include "util/table.hpp"

namespace {

using namespace afforest;

// Afforest variant with the interleaved compress removed (ablation 2):
// neighbor rounds link without compressing between rounds.
ComponentLabels<std::int32_t> afforest_no_interleave(const Graph& g,
                                                     std::int32_t rounds) {
  const std::int64_t n = g.num_nodes();
  auto comp = identity_labels<std::int32_t>(n);
  for (std::int32_t r = 0; r < rounds; ++r) {
#pragma omp parallel for schedule(dynamic, 16384)
    for (std::int64_t v = 0; v < n; ++v)
      if (r < g.out_degree(static_cast<std::int32_t>(v)))
        link(static_cast<std::int32_t>(v),
             g.neighbor(static_cast<std::int32_t>(v), r), comp);
    // no compress here — the ablation
  }
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    const auto deg = g.out_degree(static_cast<std::int32_t>(v));
    for (std::int64_t k = rounds; k < deg; ++k)
      link(static_cast<std::int32_t>(v),
           g.neighbor(static_cast<std::int32_t>(v), k), comp);
  }
  compress_all(comp);
  return comp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 15)");
  cl.describe("graph", "suite graph (default web)");
  cl.describe("trials", "timing trials (default 5)");
  bench::JsonReporter json(cl, "ablation");
  if (!bench::standard_preamble(cl, "Ablations: rounds, compress, sampling"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 15));
  const std::string graph_name = cl.get_string("graph", "web");
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  bench::warn_unknown_flags(cl);

  const Graph g = make_suite_graph(graph_name, scale);
  std::cout << "graph=" << graph_name << " V=" << g.num_nodes()
            << " E=" << g.num_edges() << "\n\n";

  std::cout << "[1] neighbor_rounds sweep (paper default: 2)\n";
  {
    TextTable table({"rounds", "median ms (skip)", "median ms (no skip)"});
    for (int r : {0, 1, 2, 3, 4, 8}) {
      AfforestOptions with_skip;
      with_skip.neighbor_rounds = r;
      AfforestOptions no_skip = with_skip;
      no_skip.skip_largest = false;
      const auto t1 =
          bench::time_trials([&] { afforest_cc(g, with_skip); }, trials);
      const auto t2 =
          bench::time_trials([&] { afforest_cc(g, no_skip); }, trials);
      table.add_row({TextTable::fmt_int(r),
                     TextTable::fmt(t1.median_s * 1e3, 2),
                     TextTable::fmt(t2.median_s * 1e3, 2)});
      json.add(graph_name, "afforest",
               {{"scale", scale}, {"trials", trials},
                {"neighbor_rounds", r}, {"skip_largest", true}}, t1);
      json.add(graph_name, "afforest-noskip",
               {{"scale", scale}, {"trials", trials},
                {"neighbor_rounds", r}, {"skip_largest", false}}, t2);
    }
    table.print(std::cout);
  }

  std::cout << "\n[2] compress interleaving (tree depth after sampling)\n";
  {
    TextTable table({"variant", "median ms", "max tree depth"});
    const auto t_with =
        bench::time_trials([&] { afforest_no_skip(g); }, trials);
    const auto t_without =
        bench::time_trials([&] { afforest_no_interleave(g, 2); }, trials);
    const auto depth_with = afforest_instrumented(g).max_tree_depth;
    // Depth probe for the no-interleave variant: link 2 rounds, measure.
    auto comp = identity_labels<std::int32_t>(g.num_nodes());
    for (std::int32_t r = 0; r < 2; ++r)
      for (std::int64_t v = 0; v < g.num_nodes(); ++v)
        if (r < g.out_degree(static_cast<std::int32_t>(v)))
          link(static_cast<std::int32_t>(v),
               g.neighbor(static_cast<std::int32_t>(v), r), comp);
    const auto depth_without = max_tree_depth(comp);
    table.add_row({"interleaved compress",
                   TextTable::fmt(t_with.median_s * 1e3, 2),
                   TextTable::fmt_int(depth_with)});
    table.add_row({"no interleave", TextTable::fmt(t_without.median_s * 1e3, 2),
                   TextTable::fmt_int(depth_without)});
    json.add(graph_name, "afforest-noskip",
             {{"scale", scale}, {"trials", trials},
              {"max_tree_depth", depth_with}}, t_with);
    json.add(graph_name, "afforest-no-interleave",
             {{"scale", scale}, {"trials", trials},
              {"max_tree_depth", depth_without}}, t_without);
    table.print(std::cout);
  }

  std::cout << "\n[3] sampling strategy: neighbor rounds vs uniform edges\n";
  {
    // §VI-A's tracking argument: neighbor-prefix samples resume from an
    // offset; uniform samples must be reprocessed in the final phase.
    TextTable table({"strategy", "median ms"});
    const auto t_nbr = bench::time_trials([&] { afforest_cc(g); }, trials);
    table.add_row({"neighbor rounds (2)",
                   TextTable::fmt(t_nbr.median_s * 1e3, 2)});
    json.add(graph_name, "afforest",
             {{"scale", scale}, {"trials", trials},
              {"sampling", "neighbor-rounds"}}, t_nbr);
    for (double p : {0.05, 0.1, 0.25}) {
      const auto t = bench::time_trials(
          [&] { afforest_uniform_sampling(g, p); }, trials);
      table.add_row({"uniform p=" + TextTable::fmt(p, 2),
                     TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(graph_name, "afforest-uniform",
               {{"scale", scale}, {"trials", trials},
                {"sampling", "uniform"}, {"sample_p", p}}, t);
    }
    table.print(std::cout);
  }

  std::cout << "\n[4] sample count vs skip accuracy\n";
  {
    // Ground truth giant component after 2 rounds, via exact counting.
    AfforestOptions base;
    TextTable table({"samples", "found giant label", "median ms"});
    for (int samples : {4, 16, 64, 256, 1024, 4096}) {
      AfforestOptions opts = base;
      opts.sample_count = samples;
      // Correctness holds regardless; measure time and whether the sampled
      // label matches the exact mode of the final labeling.
      const auto labels = afforest_cc(g, opts);
      const auto exact = largest_component_label(labels);
      const auto sampled =
          sample_frequent_element(labels, samples, opts.sample_seed);
      const auto t =
          bench::time_trials([&] { afforest_cc(g, opts); }, trials);
      table.add_row({TextTable::fmt_int(samples),
                     sampled == exact ? "yes" : "no",
                     TextTable::fmt(t.median_s * 1e3, 2)});
      json.add(graph_name, "afforest",
               {{"scale", scale}, {"trials", trials},
                {"sample_count", samples},
                {"found_giant", sampled == exact}}, t);
    }
    table.print(std::cout);
  }
  return 0;
}
