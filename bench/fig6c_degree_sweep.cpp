// Reproduces Fig 6c: runtime vs average degree on Kronecker graphs for SV,
// LP, DOBFS, and Afforest.
//
// Expected shape: SV and LP runtime grows with average degree (they
// process every edge, possibly repeatedly); DOBFS shrinks (denser graphs
// let bottom-up terminate earlier); Afforest stays roughly flat (extra
// edges beyond the sampled subgraph are skipped or validated cheaply).
#include <iostream>

#include "bench/harness.hpp"
#include "cc/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators/kronecker.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 14)");
  cl.describe("trials", "timing trials per point (default 5)");
  cl.describe("max-degree-log2", "largest average degree = 2^k (default 7)");
  bench::JsonReporter json(cl, "fig6c_degree_sweep");
  if (!bench::standard_preamble(
          cl, "Fig 6c: runtime vs average degree (Kronecker sweep)"))
    return 0;
  const int scale = static_cast<int>(cl.get_int("scale", 14));
  const int trials = static_cast<int>(cl.get_int("trials", 5));
  const int max_k = static_cast<int>(cl.get_int("max-degree-log2", 7));
  bench::warn_unknown_flags(cl);

  const std::vector<std::string> algos = {"sv", "lp", "dobfs", "afforest"};
  TextTable table({"avg degree", "sv ms", "lp ms", "dobfs ms",
                   "afforest ms"});
  for (int k = 1; k <= max_k; ++k) {
    const std::int64_t edges_per_node = std::int64_t{1} << k;
    const Graph g = build_undirected(
        generate_kronecker_edges<std::int32_t>(scale, edges_per_node, 42),
        std::int64_t{1} << scale);
    std::vector<std::string> row{TextTable::fmt_int(edges_per_node)};
    for (const auto& name : algos) {
      const auto& algo = cc_algorithm(name);
      const auto summary =
          bench::time_trials([&] { algo.run(g); }, trials);
      row.push_back(TextTable::fmt(summary.median_s * 1e3, 2));
      json.add("kron", algo.name,
               {{"scale", scale},
                {"edges_per_node", edges_per_node},
                {"trials", trials}},
               summary);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: sv/lp grow with degree, dobfs shrinks, "
               "afforest stays flat.\n";
  return 0;
}
