// Shared driver for the standalone per-algorithm apps (GAPBS-style):
// resolve a graph source from flags, run one CC algorithm for N trials,
// report the trial summary, optionally verify.
//
// Common flags:
//   --graph <file.el|.mtx|.sg>   load a graph file
//   --generate <family>          or generate a named suite graph
//   --scale N                    log2 vertices for --generate (default 16)
//   --seed S                     generator seed (default 42)
//   --trials K                   timing trials (default 16, as the paper)
//   --verify                     check against serial union-find
//   --fallback                   degrade to serial union-find when the
//                                algorithm fails or verification FAILs
//
// Exit-code taxonomy (asserted by tests and scripted callers, see
// docs/ROBUSTNESS.md):
//   0  success
//   1  verification FAILed, or the algorithm failed, without --fallback
//   2  usage error or I/O error (bad flags, unknown family, IoError)
//   3  degraded: --fallback caught a failure and the reported labels come
//      from serial union-find
#pragma once

#include <iostream>
#include <string>

#include "cc/common.hpp"
#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/suite.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/platform.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace afforest::apps {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailed = 1;
inline constexpr int kExitUsageOrIo = 2;
inline constexpr int kExitDegraded = 3;

/// Runs the named registry algorithm under the standard app protocol.
/// Returns a process exit code (see the taxonomy above).
inline int run_cc_app(int argc, char** argv, const std::string& algo_name,
                      const std::string& default_generate = "kron") {
  Graph g;
  int trials = 0;
  bool verify = false;
  bool fallback = false;
  const AlgorithmEntry* algo = nullptr;
  try {
    CommandLine cl(argc, argv);
    cl.describe("graph", "input graph file (.el, .mtx, or .sg)");
    cl.describe("generate",
                "suite family to generate when no --graph is given "
                "(road|osm-eur|twitter|web|urand|kron|smallworld|rgg|regular)");
    cl.describe("scale", "log2 vertex count for --generate (default 16)");
    cl.describe("seed", "generator seed (default 42)");
    cl.describe("trials", "timing trials (default 16)");
    cl.describe("threads", "cap OpenMP threads (default: all)");
    cl.describe("verify", "verify against serial union-find");
    cl.describe("fallback",
                "degrade to serial union-find on algorithm failure or "
                "verify FAIL (exit 3)");
    algo = &cc_algorithm(algo_name);
    if (cl.help_requested()) {
      cl.print_help(algo_name + ": " + algo->description);
      return kExitOk;
    }

    const std::string graph_path = cl.get_string("graph", "");
    if (!graph_path.empty()) {
      g = load_graph(graph_path);
    } else {
      g = make_suite_graph(cl.get_string("generate", default_generate),
                           static_cast<int>(cl.get_int("scale", 16)),
                           static_cast<std::uint64_t>(cl.get_int("seed", 42)));
    }
    trials = static_cast<int>(cl.get_int("trials", 16));
    const auto threads = cl.get_int("threads", 0);
    if (threads > 0) set_num_threads(static_cast<int>(threads));
    verify = cl.get_bool("verify", false);
    fallback = cl.get_bool("fallback", false);
    for (const auto& f : cl.unknown_flags())
      std::cerr << "warning: unknown flag --" << f << " ignored\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitUsageOrIo;
  }

  std::cout << algo_name << " (" << algo->description << ")\n"
            << platform_summary() << '\n'
            << format_degree_stats(compute_degree_stats(g)) << '\n';

  // Degrades to the trusted serial reference, reporting its labels and the
  // distinct exit code so scripted callers can tell a rescued run apart.
  bool degraded = false;
  std::vector<double> seconds;
  ComponentLabels<std::int32_t> labels;
  const auto degrade = [&](const std::string& why) {
    std::cerr << "warning: " << why
              << "; degrading to serial union-find\n";
    Timer timer;
    timer.start();
    labels = union_find_cc(g);
    timer.stop();
    seconds.push_back(timer.seconds());
    degraded = true;
  };

  try {
    for (int t = 0; t < trials; ++t) {
      Timer timer;
      timer.start();
      labels = algo->run(g);
      timer.stop();
      seconds.push_back(timer.seconds());
    }
  } catch (const std::exception& e) {
    if (!fallback) {
      std::cerr << "error: algorithm '" << algo_name
                << "' failed: " << e.what() << '\n';
      return kExitFailed;
    }
    seconds.clear();
    degrade("algorithm '" + algo_name + "' failed (" + e.what() + ")");
  }

  if (verify && !degraded) {
    const bool ok = labels_equivalent(labels, union_find_cc(g));
    if (!ok) {
      if (!fallback) {
        std::cout << "verification: FAIL\n";
        return kExitFailed;
      }
      seconds.clear();
      degrade("verification FAILed for '" + algo_name + "'");
    }
  }

  const auto summary = summarize_trials(seconds);
  const auto comps = summarize_components(labels);
  std::cout << "components: " << comps.num_components
            << "  largest: " << comps.largest_size << " ("
            << 100.0 * comps.largest_fraction << "%)\n"
            << "time: median " << summary.median_s * 1e3 << " ms  [p25 "
            << summary.p25_s * 1e3 << ", p75 " << summary.p75_s * 1e3
            << "] over " << summary.trials << " trials\n";
  if (verify)
    std::cout << "verification: PASS" << (degraded ? " (degraded)" : "")
              << '\n';
  return degraded ? kExitDegraded : kExitOk;
}

}  // namespace afforest::apps
