// Standalone demo of the serving layer: streams a uniform-random edge list
// into a QueryEngine batch by batch and prints how the published snapshot
// evolves (epoch, component count, size of vertex 0's component), then
// answers a handful of point queries against the final snapshot.
//
// This is the smallest end-to-end tour of src/serve — the benchmark driver
// (bench/serving) is the instrumented version with mixed reader threads.
#include <cstdint>
#include <iostream>

#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  using NodeID = std::int32_t;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 12)");
  cl.describe("degree", "average degree of the streamed graph (default 4)");
  cl.describe("batch", "edges applied per publish (default 1024)");
  cl.describe("seed", "edge-stream RNG seed (default 42)");
  if (cl.help_requested()) {
    cl.print_help("serve: streaming connectivity demo");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 12));
  const int degree = static_cast<int>(cl.get_int("degree", 4));
  const std::int64_t batch = cl.get_int("batch", 1024);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
  if (batch <= 0) {
    std::cerr << "serve: --batch must be positive\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const auto edges = generate_uniform_edges<NodeID>(n, m, seed);
  serve::QueryEngine<NodeID> engine(n);

  std::cout << "serving " << m << " edges over " << n << " vertices, "
            << batch << " per publish\n";
  for (std::int64_t start = 0; start < m; start += batch) {
    const auto count =
        static_cast<std::size_t>(std::min(batch, m - start));
    engine.apply_batch(edges.data() + start, count);
    engine.publish();
    const auto view = engine.acquire();
    std::cout << "epoch " << view.epoch() << ": edges " << (start + static_cast<std::int64_t>(count))
              << "/" << m << ", components " << view.component_count()
              << ", |comp(0)| " << view.component_size(0) << "\n";
  }

  serve::QueryBatch<NodeID> queries;
  for (NodeID v = 0; v < 4 && v < n; ++v)
    queries.add(0, static_cast<NodeID>((v * n) / 4));
  engine.answer(queries);
  std::cout << "\npoint queries @ epoch " << queries.epoch << ":\n";
  for (std::size_t i = 0; i < queries.count(); ++i)
    std::cout << "  connected(" << queries.u[i] << ", " << queries.v[i]
              << ") = " << (queries.connected[i] ? "yes" : "no")
              << "  comp=" << queries.component[i]
              << " size=" << queries.component_size[i] << "\n";
  return 0;
}
