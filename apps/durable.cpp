// Crash-safe serving demo + the subprocess half of the crash-sweep proof.
//
// Drives a deterministic seeded workload into a DurableEngine, RESUMING
// from whatever seq the durable directory already holds — so killing this
// process anywhere (e.g. AFFOREST_FAILPOINT_LETHAL=1 with a durability
// failpoint armed, exit code 86) and rerunning it converges on the same
// final state as an uninterrupted run.  --verify recomputes the serial
// union-find oracle over the workload prefix the directory proved durable
// and exits 1 on any divergence; --recover-only reports recovery stats
// without running further ops.  tests/integration/durable_crash_test.cpp
// drives exactly that kill → recover → verify loop with real process
// deaths; see docs/ROBUSTNESS.md for the runbook.
//
// Exit codes: 0 ok, 1 verification failed, 2 usage or I/O error
// (and kFailpointLethalExit=86 when a lethal failpoint kills the run).
#include <cstdint>
#include <deque>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cc/union_find.hpp"
#include "graph/io_error.hpp"
#include "serve/durable_engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace afforest;
using NodeID = std::int32_t;

struct Op {
  serve::WalRecordType type = serve::WalRecordType::kInsert;
  std::vector<std::pair<NodeID, NodeID>> edges;
};

/// Deterministic workload, identical across reruns of the same flags:
/// mostly inserts, deletes of previously inserted edges when unwindowed,
/// ticks when windowed.  Mirrors the in-process sweep's generator.
std::vector<Op> make_workload(std::int64_t num_nodes, std::int64_t num_ops,
                              std::int64_t batch, std::uint64_t seed,
                              bool windowed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<NodeID, NodeID>> inserted;
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(num_ops));
  const auto vertex = [&] {
    return static_cast<NodeID>(
        rng.next_bounded(static_cast<std::uint64_t>(num_nodes)));
  };
  for (std::int64_t i = 0; i < num_ops; ++i) {
    Op op;
    const std::uint64_t roll = rng.next_bounded(10);
    if (windowed && roll < 2) {
      op.type = serve::WalRecordType::kTick;
    } else if (!windowed && roll < 3 && !inserted.empty()) {
      op.type = serve::WalRecordType::kDelete;
      const std::uint64_t count =
          1 + rng.next_bounded(static_cast<std::uint64_t>(batch));
      for (std::uint64_t k = 0; k < count; ++k)
        op.edges.push_back(inserted[rng.next_bounded(inserted.size())]);
    } else {
      const std::uint64_t count =
          1 + rng.next_bounded(static_cast<std::uint64_t>(batch));
      for (std::uint64_t k = 0; k < count; ++k) {
        const std::pair<NodeID, NodeID> e{vertex(), vertex()};
        op.edges.push_back(e);
        inserted.push_back(e);
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

EdgeList<NodeID> to_edge_list(const Op& op) {
  EdgeList<NodeID> out;
  out.reserve(op.edges.size());
  for (const auto& [u, v] : op.edges) out.push_back({u, v});
  return out;
}

/// Serial oracle: surviving multiset (+ window ring) after a prefix, then
/// from-scratch union-find over it.
ComponentLabels<NodeID> oracle_labels(const std::vector<Op>& ops,
                                      std::uint64_t prefix,
                                      std::int64_t num_nodes,
                                      std::uint64_t window) {
  std::map<std::pair<NodeID, NodeID>, std::int64_t> multiset;
  std::deque<const Op*> ring;
  const auto bump = [&](std::pair<NodeID, NodeID> e, std::int64_t delta) {
    if (e.first > e.second) std::swap(e.first, e.second);
    auto& count = multiset[e];
    if (delta < 0 && count == 0) return;  // absent delete: no-op
    count += delta;
  };
  const auto expire = [&] {
    for (const auto& e : ring.front()->edges) bump(e, -1);
    ring.pop_front();
  };
  for (std::uint64_t i = 0; i < prefix && i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.type) {
      case serve::WalRecordType::kInsert:
        for (const auto& e : op.edges) bump(e, +1);
        if (window > 0) {
          ring.push_back(&op);
          // lint: bounded(each iteration pops one resident batch)
          while (ring.size() > window) expire();
        }
        break;
      case serve::WalRecordType::kDelete:
        for (const auto& e : op.edges) bump(e, -1);
        break;
      case serve::WalRecordType::kTick:
        if (!ring.empty()) expire();
        break;
    }
  }
  EdgeList<NodeID> edges;
  for (const auto& [key, count] : multiset)
    if (count > 0) edges.push_back({key.first, key.second});
  return union_find_cc(edges, num_nodes);
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cl(argc, argv);
  cl.describe("dir", "durable directory (required)");
  cl.describe("scale", "log2 of vertex count (default 8)");
  cl.describe("ops", "workload operations to run in total (default 32)");
  cl.describe("batch", "max edges per operation (default 8)");
  cl.describe("seed", "workload RNG seed (default 42)");
  cl.describe("window", "resident batches; 0 = unwindowed (default 0)");
  cl.describe("checkpoint-every", "auto-checkpoint period (default 0 = off)");
  cl.describe("no-fsync", "journal without per-record fdatasync");
  cl.describe("recover-only", "open + report recovery, run no ops");
  cl.describe("verify", "differentially check state against the oracle");
  if (cl.help_requested()) {
    cl.print_help("durable: crash-safe serving engine driver");
    return 0;
  }
  const std::string dir = cl.get_string("dir", "");
  const int scale = static_cast<int>(cl.get_int("scale", 8));
  const std::int64_t num_ops = cl.get_int("ops", 32);
  const std::int64_t batch = cl.get_int("batch", 8);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  const std::int64_t window = cl.get_int("window", 0);
  const std::int64_t checkpoint_every = cl.get_int("checkpoint-every", 0);
  const bool no_fsync = cl.get_bool("no-fsync", false);
  const bool recover_only = cl.get_bool("recover-only", false);
  const bool verify = cl.get_bool("verify", false);
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
  if (dir.empty()) {
    std::cerr << "durable: --dir is required\n";
    return 2;
  }
  if (num_ops < 0 || batch <= 0 || window < 0 || checkpoint_every < 0) {
    std::cerr << "durable: flag values out of range\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const auto ops = make_workload(n, num_ops, batch, seed, window > 0);

  try {
    serve::DurableOptions opts;
    opts.dir = dir;
    opts.window = static_cast<std::uint64_t>(window);
    opts.checkpoint_every = static_cast<std::uint64_t>(checkpoint_every);
    opts.sync = no_fsync ? serve::WalSync::kNone : serve::WalSync::kFsync;
    serve::DurableEngine<NodeID> engine(n, opts);

    const auto& stats = engine.recovery_stats();
    std::cout << "recovery: recovered=" << (stats.recovered ? 1 : 0)
              << " checkpoint_seq=" << stats.checkpoint_seq
              << " wal_records_replayed=" << stats.wal_records_replayed
              << " wal_torn_bytes=" << stats.wal_torn_bytes
              << " last_seq=" << stats.last_seq << "\n";

    if (!recover_only) {
      // Resume: ops[0 .. last_seq) are already durable from a previous
      // (possibly killed) run of the same flags; apply only the rest.
      const std::uint64_t done = engine.last_seq();
      if (done > ops.size()) {
        std::cerr << "durable: directory holds seq " << done
                  << " but the workload has only " << ops.size()
                  << " ops (flag mismatch with the previous run?)\n";
        return 2;
      }
      for (std::uint64_t i = done; i < ops.size(); ++i) {
        const Op& op = ops[i];
        switch (op.type) {
          case serve::WalRecordType::kInsert:
            engine.insert(to_edge_list(op));
            break;
          case serve::WalRecordType::kDelete:
            engine.erase(to_edge_list(op));
            break;
          case serve::WalRecordType::kTick:
            engine.tick();
            break;
        }
      }
    }

    const std::uint64_t seq = engine.last_seq();
    std::cout << "state: seq=" << seq << " epoch=" << engine.epoch()
              << " components=" << engine.component_count() << "\n";

    if (verify) {
      if (seq > ops.size()) {
        std::cerr << "durable: cannot verify seq " << seq
                  << " against a " << ops.size() << "-op workload\n";
        return 2;
      }
      const ComponentLabels<NodeID> want =
          oracle_labels(ops, seq, n, static_cast<std::uint64_t>(window));
      const ComponentLabels<NodeID> got = engine.live_labels();
      for (std::size_t v = 0; v < got.size(); ++v) {
        if (got[v] != want[v]) {
          std::cerr << "durable: VERIFY FAILED at vertex " << v << ": got "
                    << got[v] << ", oracle says " << want[v]
                    << " (durable seq " << seq << ")\n";
          return 1;
        }
      }
      std::cout << "verify: OK seq=" << seq << "\n";
    }
  } catch (const IoError& e) {
    std::cerr << "durable: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "durable: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
