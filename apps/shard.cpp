// Standalone demo of the sharded serving tier: streams a uniform-random
// edge list into a ShardedEngine batch by batch and prints how the
// cross-shard atom evolves (epoch, component count, boundary traffic),
// then answers a handful of point queries against the final atom.
//
// This is the smallest end-to-end tour of src/shard — the benchmark
// driver (bench/sharded) is the instrumented version with mixed reader
// threads and the shard-count sweep.
#include <cstdint>
#include <iostream>

#include "analysis/telemetry.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "shard/sharded_engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  using NodeID = std::int32_t;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 12)");
  cl.describe("shards", "number of shards (default 4)");
  cl.describe("degree", "average degree of the streamed graph (default 4)");
  cl.describe("batch", "edges applied per publish (default 1024)");
  cl.describe("seed", "edge-stream RNG seed (default 42)");
  if (cl.help_requested()) {
    cl.print_help("shard: sharded streaming connectivity demo");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 12));
  const int shards = static_cast<int>(cl.get_int("shards", 4));
  const int degree = static_cast<int>(cl.get_int("degree", 4));
  const std::int64_t batch = cl.get_int("batch", 1024);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
  if (batch <= 0 || shards <= 0) {
    std::cerr << "shard: --batch and --shards must be positive\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const auto edges = generate_uniform_edges<NodeID>(n, m, seed);
  telemetry::set_enabled(true);
  telemetry::reset();
  shard::ShardedEngine<NodeID> engine(n, shards);

  std::cout << "serving " << m << " edges over " << n << " vertices across "
            << shards << " shards, " << batch << " per publish\n";
  for (std::int64_t start = 0; start < m; start += batch) {
    const auto count =
        static_cast<std::size_t>(std::min(batch, m - start));
    engine.apply_batch(edges.data() + start, count);
    engine.publish();
    const auto snap = telemetry::snapshot();
    std::cout << "epoch " << engine.epoch() << ": edges "
              << (start + static_cast<std::int64_t>(count)) << "/" << m
              << ", components " << engine.component_count()
              << ", boundary msgs " << snap.shard_boundary_msgs
              << ", quotient edges " << snap.shard_quotient_edges << "\n";
  }

  serve::QueryBatch<NodeID> queries;
  for (NodeID v = 0; v < 4 && v < n; ++v)
    queries.add(0, static_cast<NodeID>((v * n) / 4));
  engine.answer(queries);
  std::cout << "\npoint queries @ epoch " << queries.epoch << ":\n";
  for (std::size_t i = 0; i < queries.count(); ++i)
    std::cout << "  connected(" << queries.u[i] << ", " << queries.v[i]
              << ") = " << (queries.connected[i] ? "yes" : "no")
              << "  comp=" << queries.component[i] << " size="
              << queries.component_size[i] << " shard="
              << engine.shard_of(queries.v[i]) << "\n";
  return 0;
}
