// Standalone app: connected components via the "dobfs" algorithm.
// See apps/driver.hpp for the flag protocol.
#include "apps/driver.hpp"

int main(int argc, char** argv) {
  return afforest::apps::run_cc_app(argc, argv, "dobfs");
}
