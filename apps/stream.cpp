// Standalone demo of the decremental serving layer: pushes a uniform-random
// edge stream through a sliding window (WindowedStream over DynamicCC) and
// prints, per tick, how the published snapshot evolves and how the expired
// batch's deletions were classified (certified-free vs tree cuts vs
// rebuilds), then drains the window to an empty graph.
//
// This is the smallest end-to-end tour of the decremental path — the
// benchmark driver (bench/streaming) is the instrumented version with the
// perf-gated delete-free pass.  See docs/STREAMING.md.
#include <cstdint>
#include <iostream>

#include "graph/generators/uniform.hpp"
#include "serve/dynamic_cc.hpp"
#include "serve/windowed_stream.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace afforest;
  using NodeID = std::int32_t;
  CommandLine cl(argc, argv);
  cl.describe("scale", "log2 of vertex count (default 12)");
  cl.describe("degree", "average degree of the streamed graph (default 4)");
  cl.describe("batch", "edges pushed per tick (default 1024)");
  cl.describe("window", "resident batches in the window (default 4)");
  cl.describe("seed", "edge-stream RNG seed (default 42)");
  if (cl.help_requested()) {
    cl.print_help("stream: sliding-window decremental connectivity demo");
    return 0;
  }
  const int scale = static_cast<int>(cl.get_int("scale", 12));
  const int degree = static_cast<int>(cl.get_int("degree", 4));
  const std::int64_t batch = cl.get_int("batch", 1024);
  const std::int64_t window = cl.get_int("window", 4);
  const auto seed = static_cast<std::uint64_t>(cl.get_int("seed", 42));
  for (const auto& f : cl.unknown_flags())
    std::cerr << "warning: unknown flag --" << f << " ignored\n";
  if (batch <= 0 || window <= 0) {
    std::cerr << "stream: --batch and --window must be positive\n";
    return 2;
  }

  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t m = n * degree;
  const auto edges = generate_uniform_edges<NodeID>(n, m, seed);
  serve::DynamicCC<NodeID> engine(n);
  serve::WindowedStream<NodeID> stream(engine,
                                       static_cast<std::size_t>(window));

  std::cout << "streaming " << m << " edges over " << n << " vertices, "
            << batch << " per tick, window of " << window << " batches\n";
  for (std::int64_t start = 0; start < m; start += batch) {
    const auto count = static_cast<std::size_t>(std::min(batch, m - start));
    EdgeList<NodeID> tick;
    for (std::size_t i = 0; i < count; ++i)
      tick.push_back(edges[static_cast<std::size_t>(start) + i]);
    const auto expired = stream.push(std::move(tick));
    const auto view = engine.acquire();
    std::cout << "epoch " << view.epoch() << ": resident "
              << stream.resident_batches() << "/" << window << ", edges "
              << engine.num_edges() << " (" << engine.num_tree_edges()
              << " tree), components " << view.component_count();
    if (expired.requested != 0)
      std::cout << " | expired: " << serve::delete_stats_summary(expired);
    std::cout << "\n";
  }

  std::cout << "\ndraining the window...\n";
  const auto drained = stream.drain();
  std::cout << "drained: " << serve::delete_stats_summary(drained) << "\n"
            << "final: edges " << engine.num_edges() << ", components "
            << engine.component_count() << " (epoch " << engine.epoch()
            << ")\n";
  return engine.num_edges() == 0 ? 0 : 1;
}
