"""SARIF 2.1.0 emission for CI annotation.

`afforest-lint --sarif <path> <sources>` writes one run per invocation:
the tool component carries every diagnostic code as a reportingDescriptor
(so viewers can render rule help without a side channel), and each
diagnostic becomes a `result` with a physical location.  The document is
emitted in lint mode only — selftest failures are corpus bugs, not source
findings.  tests/lint validates the emitted document against the schema
subset in scripts/check_sarif.py (the `lint_sarif_schema` ctest).
"""

from __future__ import annotations

import json

from . import __version__
from . import diagnostics as diag

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "docs/STATIC_ANALYSIS.md"


def to_sarif(diagnostics: list[diag.Diagnostic]) -> dict:
    """The SARIF 2.1.0 document for one lint run, as a JSON-ready dict."""
    rule_index = {code: i for i, code in enumerate(diag.ALL_CODES)}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": diag.DESCRIPTIONS[code]},
            "helpUri": _INFO_URI,
        }
        for code in diag.ALL_CODES
    ]
    results = []
    for d in diagnostics:
        result = {
            "ruleId": d.code,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                        },
                        "region": {"startLine": d.line},
                    }
                }
            ],
        }
        if d.code in rule_index:
            result["ruleIndex"] = rule_index[d.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "afforest-lint",
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, diagnostics: list[diag.Diagnostic]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_sarif(diagnostics), f, indent=2, sort_keys=False)
        f.write("\n")
