"""Self-test runner: lints the fixture corpus and compares diagnostics
against ``// BAD(<code>)`` markers.

Every fixture line that should produce diagnostics carries one marker per
expected code; files with no markers must lint clean.  The comparison is
exact and bidirectional per (line, code): a missing diagnostic fails the
run just like an unexpected one, so the corpus pins both the positive and
the negative behavior of every rule.
"""

from __future__ import annotations

import os
import re

from . import engine
from .lexer import lex

_BAD_RE = re.compile(r"BAD\(([a-z*-]+)\)")


def expected_diagnostics(path: str) -> set[tuple[int, str]]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    _, comment_lines = lex(text)
    expected = set()
    for idx, comment in enumerate(comment_lines):
        for m in _BAD_RE.finditer(comment):
            expected.add((idx + 1, m.group(1)))
    return expected


def run_selftest(corpus_dir: str) -> tuple[int, list[str]]:
    """Returns (failure_count, report_lines)."""
    failures = 0
    report: list[str] = []
    fixtures = sorted(
        os.path.join(corpus_dir, name)
        for name in os.listdir(corpus_dir)
        if name.endswith((".hpp", ".cpp", ".h", ".cc"))
    )
    if not fixtures:
        return 1, [f"selftest: no fixtures found in {corpus_dir}"]

    for path in fixtures:
        expected = expected_diagnostics(path)
        actual = {(d.line, d.code) for d in engine.analyze_file(path)}
        name = os.path.basename(path)
        missing = sorted(expected - actual)
        unexpected = sorted(actual - expected)
        if not missing and not unexpected:
            report.append(f"PASS {name} ({len(expected)} expected diagnostics)")
            continue
        failures += 1
        report.append(f"FAIL {name}")
        for line, code in missing:
            report.append(f"  expected but not emitted: line {line}: {code}")
        for line, code in unexpected:
            report.append(f"  emitted but not expected: line {line}: {code}")
    return failures, report
