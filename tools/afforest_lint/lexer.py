"""A small C++ lexer: separates code from comments and blanks out literals.

The engine works on two parallel views of a source file:

  * ``code_lines``    -- source text with comments and string/char literal
                         *contents* replaced by spaces (quotes kept), so
                         structural scans (braces, parens, keywords) never
                         trip over text inside literals or comments.
  * ``comment_lines`` -- the comment text present on each physical line
                         (both // and /* */ forms), used for the marker
                         grammar (NOLINT, lint: bounded, ...).

Both views preserve line structure exactly: code_lines[i] and
comment_lines[i] describe physical line i of the input.  Raw string
literals (R"delim(...)delim") and escape sequences are handled.
"""

from __future__ import annotations

import re

_RAW_OPEN = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


def lex(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines) for the given source text."""
    code_lines: list[str] = []
    comment_lines: list[str] = []
    code: list[str] = []
    comment: list[str] = []

    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_close = ""
    i = 0
    n = len(text)

    def endline() -> None:
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
        code.clear()
        comment.clear()

    while i < n:
        c = text[i]
        if c == "\n":
            if state == LINE_COMMENT:
                state = NORMAL
            endline()
            i += 1
            continue

        if state == NORMAL:
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                code.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                code.append("  ")
                i += 2
                continue
            if c == '"':
                m = None
                if i >= 1 and text[i - 1] == "R":
                    m = _RAW_OPEN.match(text, i - 1)
                if m:
                    raw_close = ")" + m.group(1) + '"'
                    state = RAW
                    code.append('"')
                    i = m.end()
                    continue
                state = STRING
                code.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separator (1'000'000), not a char literal.
                if (
                    i >= 1
                    and text[i - 1].isdigit()
                    and i + 1 < n
                    and text[i + 1].isdigit()
                ):
                    code.append("'")
                    i += 1
                    continue
                state = CHAR
                code.append("'")
                i += 1
                continue
            code.append(c)
            i += 1
            continue

        if state == LINE_COMMENT:
            comment.append(c)
            code.append(" ")
            i += 1
            continue

        if state == BLOCK_COMMENT:
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = NORMAL
                code.append("  ")
                i += 2
                continue
            comment.append(c)
            code.append(" ")
            i += 1
            continue

        if state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and i + 1 < n:
                code.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                code.append(quote)
                i += 1
                continue
            code.append(" ")
            i += 1
            continue

        # RAW string: scan for the close delimiter; newlines keep structure.
        if text.startswith(raw_close, i):
            state = NORMAL
            code.append(" " * (len(raw_close) - 1) + '"')
            i += len(raw_close)
            continue
        code.append(" ")
        i += 1

    endline()
    return code_lines, comment_lines
