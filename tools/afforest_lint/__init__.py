"""afforest-lint: structural static analysis for the Afforest codebase.

Enforces the repo's concurrency disciplines at lint time:

  L1  afforest-plain-shared-access   shared component arrays must be
                                     accessed through the atomic helpers
                                     inside parallel regions
  L2  afforest-unbounded-fixpoint    fixpoint loops in src/cc must call the
                                     guards.hpp convergence ceiling or carry
                                     a `// lint: bounded(<reason>)` waiver
  L3  afforest-pvector-by-value      pvector passed by value (unless moved)
      afforest-atomic-ref-local      raw std::atomic_ref outside the
                                     util/parallel.hpp helpers
      afforest-rng-seed              non-deterministic RNG seeding outside
                                     util/rng.hpp
      afforest-raw-getenv            std::getenv outside util/env.hpp
  W1  afforest-waiver-missing-reason waiver/NOLINT without a reason string

and the serving-tier disciplines (serve_rules.py; active in src/serve and
files marked `// lint-scope: serve`):

  S1  afforest-serve-writer-discipline   public mutators of engine classes
                                         must hold WriterLock, delegate to a
                                         locked entry point, or carry a
                                         `// lint: single-writer(<reason>)`
                                         waiver; const readers must not
                                         touch `writer-only` members
  S2  afforest-serve-rcu-publication     snapshot publication only through
                                         SnapshotStore (no ad-hoc atomic
                                         pointers or label stores)
  S3  afforest-serve-durability-order    write -> fsync -> rename ->
                                         dir-fsync; journal-then-apply;
                                         checkpoint before manifest
  S4  afforest-serve-raw-posix           raw ::open/::write/... only inside
                                         posix_file.hpp
  S5  afforest-serve-failpoint-coverage  every durability site declares a
                                         failpoint or a reasoned waiver
  LY  afforest-include-layering          includes must follow the declared
                                         layer map (util < graph < cc/
                                         analysis < exec/dist/serve <
                                         bench < apps)

The primary engine is a dependency-free lexical/structural analyzer
(engine.py) so the lint runs anywhere python3 runs.  When the clang python
bindings are importable, clang_backend.py can cross-check translation units
against compile_commands.json; it is strictly optional and auto-gated.
"""

__version__ = "1.1.0"
