"""Optional libclang cross-check backend.

The structural engine (engine.py) is the source of truth — it needs nothing
beyond python3.  When the clang python bindings AND a compile_commands.json
are available (CI installs them; the dev container may not have them), this
backend re-checks the simple token-level rules (raw getenv, raw
std::atomic_ref, std::random_device) over real ASTs as a
defense-in-depth pass.  It is additive only: it can confirm findings or add
ones the lexical pass missed in macro-heavy code, and it is silently
skipped when unavailable.
"""

from __future__ import annotations

import json
import os

from . import diagnostics as diag

try:  # pragma: no cover - availability depends on the host image
    from clang import cindex  # type: ignore

    _AVAILABLE = True
except Exception:  # ModuleNotFoundError or libclang load failure
    cindex = None  # type: ignore
    _AVAILABLE = False


def available() -> bool:
    return _AVAILABLE


def _iter_calls(node):
    for child in node.get_children():
        yield child
        yield from _iter_calls(child)


def check_compile_commands(
    build_dir: str, source_roots: list[str]
) -> list[diag.Diagnostic]:
    """Parses every TU in build_dir/compile_commands.json under the given
    roots and re-applies the token-level rules on the AST."""
    if not _AVAILABLE:
        return []
    ccpath = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(ccpath):
        return []
    with open(ccpath, encoding="utf-8") as f:
        commands = json.load(f)

    roots = [os.path.abspath(r) for r in source_roots]
    index = cindex.Index.create()
    out: list[diag.Diagnostic] = []
    for entry in commands:
        src = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        if not any(src.startswith(r + os.sep) for r in roots):
            continue
        args = [
            a
            for a in entry.get("command", "").split()[1:]
            if a not in ("-c", "-o") and not a.endswith((".o", ".cpp", ".cc"))
        ]
        try:
            tu = index.parse(src, args=args)
        except Exception:
            continue
        for node in _iter_calls(tu.cursor):
            loc = node.location
            if loc.file is None:
                continue
            fname = loc.file.name.replace(os.sep, "/")
            if not any(fname.startswith(r.replace(os.sep, "/")) for r in roots):
                continue
            if node.kind == cindex.CursorKind.CALL_EXPR and node.spelling == "getenv":
                if not fname.endswith("util/env.hpp"):
                    out.append(
                        diag.Diagnostic(
                            fname, loc.line, diag.RAW_GETENV,
                            "raw getenv call (clang backend)",
                        )
                    )
            if (
                node.kind == cindex.CursorKind.TYPE_REF
                and "atomic_ref" in node.spelling
                and not fname.endswith("util/parallel.hpp")
            ):
                out.append(
                    diag.Diagnostic(
                        fname, loc.line, diag.ATOMIC_REF_LOCAL,
                        "raw std::atomic_ref (clang backend)",
                    )
                )
    return out
