"""Structural analysis engine for afforest-lint.

Dependency-free by design: the container image has no clang frontend, so the
primary engine is a lexical/structural analyzer over the blanked code view
produced by lexer.py.  It understands exactly as much C++ as the rules need:

  * function definitions (name, parameter list, body extent)
  * OpenMP parallel regions (``#pragma omp parallel [for]`` + the statement
    they apply to, with ``critical``/``single``/``master`` sub-blocks
    excluded from the L1 check)
  * while/do fixpoint loops and their body extents
  * the comment marker grammar:
      // NOLINT(afforest-<code>[, ...]): <reason>        same-line waiver
      // NOLINTNEXTLINE(afforest-<code>[, ...]): <reason>
      // lint: bounded(<reason>)         L2 waiver for the next loop
      // lint: parallel-context          next function body is analyzed as
                                         if inside a parallel region (for
                                         helpers like link/compress that are
                                         only ever called from one)
      // lint-scope: cc                  opt this file into the L2 rule
                                         (src/cc/*.hpp is in scope by path)

Tracked shared arrays (rule L1):
  * non-const ``pvector<...NodeID...>&`` function parameters (scoped to the
    function body)
  * ``ComponentLabels<...>`` declarations (scoped from the declaration to
    the end of file — declarations are function-local in practice, and the
    over-approximation only ever *adds* checking)
  * ``auto& x = <expr>.labels`` aliases of the above
"""

from __future__ import annotations

import bisect
import dataclasses
import os
import re

from . import diagnostics as diag
from . import serve_rules
from .lexer import lex

# Helpers whose first argument may be (and must be, inside parallel code) a
# subscript of a tracked array.  All live in src/util/parallel.hpp.
ATOMIC_HELPERS = frozenset(
    {
        "atomic_load",
        "atomic_store",
        "compare_and_swap",
        "atomic_fetch_min",
        "fetch_and_add",
    }
)

# Statement keywords the function-definition scan must not mistake for
# function names.
_NON_FUNCTION_NAMES = frozenset(
    {
        "if",
        "for",
        "while",
        "switch",
        "catch",
        "return",
        "do",
        "else",
        "sizeof",
        "alignas",
        "alignof",
        "decltype",
        "static_assert",
        "new",
        "delete",
        "co_await",
        "co_return",
        "noexcept",
        "requires",
    }
)

_FUNC_RE = re.compile(
    r"([A-Za-z_][\w:]*)\s*"  # function name (possibly qualified)
    r"\(((?:[^()]|\([^()]*\))*)\)"  # params, one nesting level
    r"\s*(?P<cv>const\b\s*)?(?:noexcept(?:\s*\([^()]*\))?\s*)?"
    r"(?:->\s*[\w:<>&*,\s]+?)?"
    r"(?::\s*[^{};]*)?\s*\{",  # optional constructor member-init list
    re.DOTALL,
)

_CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)(?:\s+final\b)?\s*(?::[^{;]*)?\{"
)
_ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:(?!:)")
# Member declarations are recognized as "the first identifier directly
# followed by '=', '{' or ';'" on the declaration line (types and nested
# template arguments are always followed by another token first).
_MEMBER_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*[={;]")
_WRITER_ONLY_RE = re.compile(r"\bwriter-only\b")

_TRACKED_PARAM_RE = re.compile(
    r"(const\s+)?pvector<[^<>;&]*NodeID[^<>;&]*>\s*&\s*([A-Za-z_]\w*)"
)
_BYVALUE_PVECTOR_RE = re.compile(
    r"(?:const\s+)?pvector<(?:[^<>]|<[^<>]*>)*>\s+([A-Za-z_]\w*)\s*(?=[,=)]|$)"
)
_LABELS_DECL_RE = re.compile(r"\bComponentLabels<[^;{}]*>\s+([A-Za-z_]\w*)\s*[=({;]")
_LABELS_ALIAS_RE = re.compile(r"\bauto\s*&\s*([A-Za-z_]\w*)\s*=[^;]*\blabels\b")
_LABELS_INIT_RE = re.compile(
    r"\bauto\s*&?\s*([A-Za-z_]\w*)\s*=[^;]*\bidentity_labels\b"
)

_NOLINT_RE = re.compile(r"(?<![A-Z])NOLINT\(([^)]*)\)(?:\s*:\s*(\S.*))?")
_NOLINTNEXT_RE = re.compile(r"NOLINTNEXTLINE\(([^)]*)\)(?:\s*:\s*(\S.*))?")
_BOUNDED_RE = re.compile(r"lint:\s*bounded\((.*)\)")
_PARALLEL_CONTEXT_RE = re.compile(r"lint:\s*parallel-context")
_CC_SCOPE_RE = re.compile(r"lint-scope:\s*cc")
_SERVE_SCOPE_RE = re.compile(r"lint-scope:\s*serve")
# The reason may continue across following comment-only lines until the
# parens balance (see _multiline_reason); these match the opening only.
_SINGLE_WRITER_OPEN_RE = re.compile(r"lint:\s*single-writer\(")
_DURABILITY_WAIVER_OPEN_RE = re.compile(r"lint:\s*durability-order\(")
_FAILPOINT_WAIVER_OPEN_RE = re.compile(r"lint:\s*failpoint\(")
_LAYER_MARKER_RE = re.compile(r"lint-layer:\s*([a-z]+)")

_WS_RE = re.compile(r"\s+$")


@dataclasses.dataclass
class Function:
    name: str
    params: str
    sig_start: int  # offset of the name in the blanked code
    body_start: int  # offset of the opening brace
    body_end: int  # offset just past the closing brace
    parallel_context: bool = False
    is_const: bool = False  # trailing const (member-function read path)
    is_static: bool = False  # `static` storage class before the return type


@dataclasses.dataclass
class CxxClass:
    """A class/struct definition with enough structure for the serve-tier
    method-scope rules: access sections and writer-only member names."""

    name: str
    kind: str  # "class" | "struct"
    body_start: int  # offset of the opening brace
    body_end: int  # offset just past the closing brace
    access_specs: list[tuple[int, str]] = dataclasses.field(default_factory=list)
    writer_only_members: list[str] = dataclasses.field(default_factory=list)

    def access_at(self, offset: int) -> str:
        """Access level in effect at `offset` inside this class's body."""
        access = "public" if self.kind == "struct" else "private"
        for spec_offset, spec in self.access_specs:
            if spec_offset >= offset:
                break
            access = spec
        return access


@dataclasses.dataclass
class _Nolint:
    codes: frozenset[str]
    has_reason: bool
    reported_missing: bool = False


class FileAnalysis:
    """Single-file structural analysis producing diagnostics."""

    def __init__(self, path: str, text: str, display_path: str | None = None):
        self.path = path
        self.display = display_path or path
        # Raw lines are kept for the include-layering scan: the lexer
        # blanks string-literal contents, which include targets are.
        self.raw_lines = text.split("\n")
        self.code_lines, self.comment_lines = lex(text)
        self.code = "\n".join(self.code_lines)
        self.line_starts = [0]
        for line in self.code_lines[:-1]:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)
        self.diags: list[diag.Diagnostic] = []
        self._collect_markers()
        self.functions = self._find_functions()
        self._attach_parallel_context()
        self.parallel_ranges = self._find_parallel_ranges()
        self.excluded_ranges = self._find_excluded_ranges()
        self.tracked = self._find_tracked_arrays()
        self.classes = self._find_classes()
        self._collect_writer_only_members()
        self.single_writer_by_func = self._attach_function_markers(
            self.single_writer
        )
        self.durability_by_func = self._attach_function_markers(
            self.durability_waivers
        )
        self.failpoint_by_func = self._attach_function_markers(
            self.failpoint_waivers
        )

    # -- geometry -----------------------------------------------------------

    def line_of(self, offset: int) -> int:
        """1-based physical line containing the given code offset."""
        return bisect.bisect_right(self.line_starts, offset)

    def _match_brace(self, start: int) -> int:
        """Given the offset of '{', returns the offset just past its '}'."""
        depth = 0
        for i in range(start, len(self.code)):
            c = self.code[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        return len(self.code)

    def _match_paren(self, start: int) -> int:
        depth = 0
        for i in range(start, len(self.code)):
            c = self.code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        return len(self.code)

    def _skip_ws(self, i: int) -> int:
        while i < len(self.code) and self.code[i].isspace():
            i += 1
        return i

    def _pragma_extent(self, i: int) -> int:
        """Offset past a preprocessor directive starting at i, following
        backslash line continuations."""
        line = self.line_of(i)
        while line <= len(self.code_lines):
            stripped = _WS_RE.sub("", self.code_lines[line - 1])
            if not stripped.endswith("\\"):
                break
            line += 1
        if line >= len(self.code_lines):
            return len(self.code)
        return self.line_starts[line]  # start of the line after the directive

    def _consume_statement(self, i: int) -> int:
        """Offset just past the statement starting at (or after) i."""
        i = self._skip_ws(i)
        if i >= len(self.code):
            return i
        c = self.code[i]
        if c == "{":
            return self._match_brace(i)
        if c == "#":
            # A nested pragma (e.g. `#pragma omp for`) applies to the next
            # statement; consume both.
            return self._consume_statement(self._pragma_extent(i))
        m = re.match(r"(for|while|if|do|else|switch)\b", self.code[i:])
        if m:
            kw = m.group(1)
            j = i + len(kw)
            if kw == "do":
                j = self._consume_statement(j)
                j = self._skip_ws(j)
                m2 = re.match(r"while\b", self.code[j:])
                if m2:
                    j = self._match_paren(self.code.index("(", j))
                    j = self._skip_ws(j)
                    if j < len(self.code) and self.code[j] == ";":
                        j += 1
                return j
            if kw != "else":
                j = self._skip_ws(j)
                if j < len(self.code) and self.code[j] == "(":
                    j = self._match_paren(j)
            j = self._consume_statement(j)
            if kw == "if":
                k = self._skip_ws(j)
                if re.match(r"else\b", self.code[k:]):
                    j = self._consume_statement(k + 4)
            return j
        # Plain statement: to the ';' at paren/brace depth 0.
        depth = 0
        while i < len(self.code):
            c = self.code[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
            elif c == ";" and depth == 0:
                return i + 1
            i += 1
        return i

    # -- markers ------------------------------------------------------------

    def _collect_markers(self) -> None:
        self.nolint: dict[int, _Nolint] = {}  # line -> suppression
        self.bounded: dict[int, str] = {}  # line -> reason ('' if missing)
        self.single_writer: dict[int, str] = {}  # line -> reason
        self.durability_waivers: dict[int, str] = {}  # line -> reason
        self.failpoint_waivers: dict[int, str] = {}  # line -> reason
        self.parallel_context_lines: list[int] = []
        self.cc_scope_marker = False
        self.serve_scope_marker = False
        self.layer_marker: str | None = None
        for idx, comment in enumerate(self.comment_lines):
            line = idx + 1
            if not comment:
                continue
            m = _NOLINTNEXT_RE.search(comment)
            if m:
                self._add_nolint(line + 1, m)
            else:
                m = _NOLINT_RE.search(comment)
                if m:
                    self._add_nolint(line, m)
            m = _BOUNDED_RE.search(comment)
            if m:
                self.bounded[line] = m.group(1).strip()
            for rx, table in (
                (_SINGLE_WRITER_OPEN_RE, self.single_writer),
                (_DURABILITY_WAIVER_OPEN_RE, self.durability_waivers),
                (_FAILPOINT_WAIVER_OPEN_RE, self.failpoint_waivers),
            ):
                m = rx.search(comment)
                if m:
                    table[line] = self._multiline_reason(
                        comment[m.end():], idx
                    )
            m = _LAYER_MARKER_RE.search(comment)
            if m:
                self.layer_marker = m.group(1)
            if _PARALLEL_CONTEXT_RE.search(comment):
                self.parallel_context_lines.append(line)
            if _CC_SCOPE_RE.search(comment):
                self.cc_scope_marker = True
            if _SERVE_SCOPE_RE.search(comment):
                self.serve_scope_marker = True

    def _multiline_reason(self, first: str, idx: int) -> str:
        """Reason text of a `lint: <kind>(...)` waiver whose parenthesized
        reason may continue across following comment-only lines.  `first`
        is the text after the opening paren on line idx (0-based)."""
        parts: list[str] = []
        text = first
        depth = 1
        line_idx = idx
        while True:
            for pos, ch in enumerate(text):
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        parts.append(text[:pos])
                        return " ".join(p.strip() for p in parts).strip()
            parts.append(text)
            line_idx += 1
            if line_idx >= len(self.comment_lines) or line_idx - idx > 20:
                break
            if self.code_lines[line_idx].strip():
                break  # a code line ends the comment block
            text = self.comment_lines[line_idx]
            if not text.strip():
                break  # blank line ends the waiver comment
        return " ".join(p.strip() for p in parts).strip()

    def _add_nolint(self, line: int, m: re.Match) -> None:
        codes = frozenset(
            c.strip() for c in m.group(1).split(",") if c.strip()
        )
        self.nolint[line] = _Nolint(codes, bool(m.group(2)))

    # -- structure ----------------------------------------------------------

    def _find_functions(self) -> list[Function]:
        functions = []
        for m in _FUNC_RE.finditer(self.code):
            name = m.group(1).split("::")[-1]
            if name in _NON_FUNCTION_NAMES:
                continue
            body_start = m.end() - 1
            functions.append(
                Function(
                    name=name,
                    params=m.group(2),
                    sig_start=m.start(1),
                    body_start=body_start,
                    body_end=self._match_brace(body_start),
                    is_const=bool(m.group("cv")),
                    is_static=self._has_static_before(m.start(1)),
                )
            )
        functions.sort(key=lambda f: f.sig_start)
        return functions

    def _has_static_before(self, sig_start: int) -> bool:
        """True iff `static` appears between the previous declaration
        boundary (';', '{', '}') and the function name — i.e. in this
        declaration's specifier sequence."""
        window = self.code[max(0, sig_start - 200) : sig_start]
        tail = re.split(r"[;{}]", window)[-1]
        return re.search(r"\bstatic\b", tail) is not None

    def _find_classes(self) -> list[CxxClass]:
        classes = []
        for m in _CLASS_RE.finditer(self.code):
            if re.search(r"\benum\s*\Z", self.code[: m.start()]):
                continue  # `enum class`/`enum struct` is not a class
            body_start = m.end() - 1
            classes.append(
                CxxClass(
                    name=m.group(2),
                    kind=m.group(1),
                    body_start=body_start,
                    body_end=self._match_brace(body_start),
                )
            )
        # Access specifiers belong to the innermost class containing them.
        for m in _ACCESS_RE.finditer(self.code):
            owner = self._innermost_class(m.start(), classes)
            if owner is not None:
                owner.access_specs.append((m.start(), m.group(1)))
        for c in classes:
            c.access_specs.sort()
        return classes

    @staticmethod
    def _innermost_class(
        offset: int, classes: list[CxxClass] | None = None
    ) -> CxxClass | None:
        best = None
        for c in classes or ():
            if c.body_start < offset < c.body_end:
                if best is None or c.body_start > best.body_start:
                    best = c
        return best

    def class_of(self, offset: int) -> CxxClass | None:
        """Innermost class whose body contains `offset`, if any."""
        return self._innermost_class(offset, self.classes)

    def _collect_writer_only_members(self) -> None:
        """Members whose declaration line carries a `writer-only` comment
        register as writer-plane state: const (reader-path) methods of the
        same class must not reference them (rule S1, reader half)."""
        func_bodies = [(f.body_start, f.body_end) for f in self.functions]
        for idx, comment in enumerate(self.comment_lines):
            if not _WRITER_ONLY_RE.search(comment):
                continue
            code_line = self.code_lines[idx].strip()
            m = _MEMBER_NAME_RE.search(code_line)
            if not m:
                continue
            offset = self.line_starts[idx]
            if self._in_ranges(offset, func_bodies):
                continue  # a local, not a member declaration
            owner = self.class_of(offset)
            if owner is not None:
                owner.writer_only_members.append(m.group(1))

    def _attach_function_markers(
        self, table: dict[int, str]
    ) -> dict[int, tuple[int, str]]:
        """Attach line->reason markers to functions the way parallel-context
        attaches: each marker covers the first function whose signature is
        at or below the marker line.  Returns sig_start -> (line, reason)."""
        out: dict[int, tuple[int, str]] = {}
        for marker_line in sorted(table):
            for f in self.functions:
                if self.line_of(f.sig_start) >= marker_line:
                    out[f.sig_start] = (marker_line, table[marker_line])
                    break
        return out

    def _attach_parallel_context(self) -> None:
        for marker_line in self.parallel_context_lines:
            for f in self.functions:
                if self.line_of(f.sig_start) >= marker_line:
                    f.parallel_context = True
                    break

    def _omp_pragmas(self) -> list[tuple[int, str]]:
        """(offset, joined pragma text) for every `#pragma omp` directive."""
        out = []
        for idx, text in enumerate(self.code_lines):
            stripped = text.lstrip()
            if not stripped.startswith("#"):
                continue
            if not re.match(r"#\s*pragma\s+omp\b", stripped):
                continue
            joined = [stripped]
            j = idx
            while _WS_RE.sub("", self.code_lines[j]).endswith("\\") and (
                j + 1 < len(self.code_lines)
            ):
                j += 1
                joined.append(self.code_lines[j].strip())
            text = " ".join(p.rstrip("\\").strip() for p in joined)
            out.append((self.line_starts[idx], text))
        return out

    def _find_parallel_ranges(self) -> list[tuple[int, int]]:
        ranges = []
        for offset, text in self._omp_pragmas():
            if re.match(r"#\s*pragma\s+omp\s+parallel\b", text):
                start = self._pragma_extent(offset)
                ranges.append((start, self._consume_statement(start)))
        for f in self.functions:
            if f.parallel_context:
                ranges.append((f.body_start, f.body_end))
        return ranges

    def _find_excluded_ranges(self) -> list[tuple[int, int]]:
        ranges = []
        for offset, text in self._omp_pragmas():
            if re.match(r"#\s*pragma\s+omp\s+(critical|single|master)\b", text):
                start = self._pragma_extent(offset)
                ranges.append((start, self._consume_statement(start)))
        return ranges

    def _find_tracked_arrays(self) -> list[tuple[str, int, int]]:
        """(name, scope_start, scope_end) for every tracked shared array."""
        tracked = []
        for f in self.functions:
            for m in _TRACKED_PARAM_RE.finditer(f.params):
                if m.group(1):  # const ref: read-only, not tracked
                    continue
                tracked.append((m.group(2), f.body_start, f.body_end))
        sig_starts = {f.sig_start for f in self.functions}
        for regex in (_LABELS_DECL_RE, _LABELS_ALIAS_RE, _LABELS_INIT_RE):
            for m in regex.finditer(self.code):
                if m.start(1) in sig_starts:
                    continue  # a function returning ComponentLabels, not a decl
                tracked.append((m.group(1), m.end(), self._scope_end(m.start())))
        return tracked

    def _scope_end(self, offset: int) -> int:
        """End of the innermost function body containing offset (end of file
        for namespace-scope declarations, e.g. class members)."""
        end = len(self.code)
        best_start = -1
        for f in self.functions:
            if f.body_start <= offset < f.body_end and f.body_start > best_start:
                best_start = f.body_start
                end = f.body_end
        return end

    # -- rules --------------------------------------------------------------

    def _in_ranges(self, offset: int, ranges: list[tuple[int, int]]) -> bool:
        return any(a <= offset < b for a, b in ranges)

    def _emit(self, offset_or_line: int, code: str, message: str, *, is_line=False):
        line = offset_or_line if is_line else self.line_of(offset_or_line)
        self.diags.append(diag.Diagnostic(self.display, line, code, message))

    def check_plain_shared_access(self) -> None:
        if not self.parallel_ranges:
            return
        seen: set[tuple[int, str]] = set()
        for name, scope_start, scope_end in self.tracked:
            pattern = re.compile(r"\b" + re.escape(name) + r"\s*\[")
            for m in pattern.finditer(self.code, scope_start, scope_end):
                if not self._in_ranges(m.start(), self.parallel_ranges):
                    continue
                if self._in_ranges(m.start(), self.excluded_ranges):
                    continue
                if self._is_blessed_subscript(m.start()):
                    continue
                line = self.line_of(m.start())
                if (line, name) in seen:
                    continue
                seen.add((line, name))
                self._emit(
                    m.start(),
                    diag.PLAIN_SHARED_ACCESS,
                    f"plain subscript of shared array '{name}' inside a "
                    f"parallel region; use the atomic helpers from "
                    f"util/parallel.hpp",
                )

    def _is_blessed_subscript(self, offset: int) -> bool:
        """True iff the subscript at `offset` is the first argument of an
        atomic helper call: the non-space text before it must end with
        ``<helper>(``."""
        i = offset - 1
        while i >= 0 and self.code[i].isspace():
            i -= 1
        if i < 0 or self.code[i] != "(":
            return False
        i -= 1
        while i >= 0 and self.code[i].isspace():
            i -= 1
        end = i + 1
        while i >= 0 and (self.code[i].isalnum() or self.code[i] == "_"):
            i -= 1
        return self.code[i + 1 : end] in ATOMIC_HELPERS

    def check_unbounded_fixpoint(self, cc_scope: bool) -> None:
        if not (cc_scope or self.cc_scope_marker):
            return
        skip_whiles: set[int] = set()  # trailing `while` of do-while loops
        loops: list[tuple[int, int, int]] = []  # (kw_offset, body_start, body_end)

        for m in re.finditer(r"\bdo\b", self.code):
            j = self._skip_ws(m.end())
            if j >= len(self.code) or self.code[j] != "{":
                continue
            body_end = self._match_brace(j)
            k = self._skip_ws(body_end)
            if re.match(r"while\b", self.code[k:]):
                skip_whiles.add(k)
            loops.append((m.start(), j, body_end))

        for m in re.finditer(r"\bwhile\s*\(", self.code):
            if m.start() in skip_whiles:
                continue
            paren_end = self._match_paren(self.code.index("(", m.start()))
            body_end = self._consume_statement(paren_end)
            loops.append((m.start(), paren_end, body_end))

        for kw_offset, body_start, body_end in loops:
            body = self.code[body_start:body_end]
            if "check_convergence_guard" in body:
                continue
            line = self.line_of(kw_offset)
            reason = self._bounded_waiver_for(line)
            if reason is None:
                self._emit(
                    kw_offset,
                    diag.UNBOUNDED_FIXPOINT,
                    "fixpoint loop without check_convergence_guard or a "
                    "'// lint: bounded(<reason>)' waiver",
                )
            elif not reason:
                self._emit(
                    kw_offset,
                    diag.WAIVER_MISSING_REASON,
                    "'lint: bounded()' waiver needs a reason explaining why "
                    "the loop terminates",
                )

    def _bounded_waiver_for(self, loop_line: int) -> str | None:
        """Reason string of the waiver covering a loop at loop_line, '' when
        a waiver is present but empty, None when there is no waiver.  Looks
        at the loop line itself, then upward across comment-only lines."""
        if loop_line in self.bounded:
            return self.bounded[loop_line]
        line = loop_line - 1
        while line >= 1:
            if line in self.bounded:
                return self.bounded[line]
            code = self.code_lines[line - 1].strip()
            comment = self.comment_lines[line - 1].strip()
            if code:  # a code line without a waiver ends the search
                return None
            if not comment:  # blank line ends the search
                return None
            line -= 1
        return None

    def check_pvector_by_value(self) -> None:
        for f in self.functions:
            # Scan from the signature so member-init lists count as "moved"
            # too; the parameter list itself never contains std::move(name).
            body = self.code[f.sig_start : f.body_end]
            for m in _BYVALUE_PVECTOR_RE.finditer(f.params):
                name = m.group(1)
                if re.search(
                    r"std::move\s*\(\s*" + re.escape(name) + r"\s*\)", body
                ):
                    continue  # sink parameter: the copy is intentional
                self._emit(
                    f.sig_start,
                    diag.PVECTOR_BY_VALUE,
                    f"parameter '{name}' takes a pvector by value; pass by "
                    f"(const) reference or std::move it into place",
                )

    def check_atomic_ref(self, exempt: bool) -> None:
        if exempt:
            return
        for m in re.finditer(r"\bstd::atomic_ref\s*<", self.code):
            self._emit(
                m.start(),
                diag.ATOMIC_REF_LOCAL,
                "raw std::atomic_ref outside util/parallel.hpp; wrap the "
                "operation in an atomic_* helper",
            )

    def check_rng_seed(self, exempt: bool) -> None:
        if exempt:
            return
        for m in re.finditer(
            r"\bstd::random_device\b|\brandom_device\s*\{|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)",
            self.code,
        ):
            self._emit(
                m.start(),
                diag.RNG_SEED,
                "non-deterministic RNG seeding; take seeds from "
                "util/rng.hpp or the CLI so runs stay reproducible",
            )

    def check_raw_getenv(self, exempt: bool) -> None:
        if exempt:
            return
        for m in re.finditer(r"\b(?:std::)?getenv\s*\(", self.code):
            self._emit(
                m.start(),
                diag.RAW_GETENV,
                "raw getenv call; use the typed accessors in util/env.hpp",
            )

    # -- suppression --------------------------------------------------------

    def apply_suppressions(self) -> list[diag.Diagnostic]:
        out = []
        for d in self.diags:
            sup = self.nolint.get(d.line)
            if sup is not None and (d.code in sup.codes or "afforest-*" in sup.codes):
                if not sup.has_reason and not sup.reported_missing:
                    sup.reported_missing = True
                    out.append(
                        diag.Diagnostic(
                            self.display,
                            d.line,
                            diag.WAIVER_MISSING_REASON,
                            f"NOLINT({d.code}) suppresses a diagnostic but "
                            f"gives no reason; write 'NOLINT({d.code}): <why>'",
                        )
                    )
                continue
            out.append(d)
        out.sort(key=lambda d: (d.line, d.code))
        return out


def _is_cc_scope(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    return "/cc/" in norm and norm.endswith(".hpp") and "/src/" in norm


def _exempt_suffix(path: str, suffix: str) -> bool:
    return path.replace(os.sep, "/").endswith(suffix)


def analyze_file(path: str, display_path: str | None = None) -> list[diag.Diagnostic]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    return analyze_text(text, path, display_path)


def analyze_text(
    text: str, path: str, display_path: str | None = None
) -> list[diag.Diagnostic]:
    fa = FileAnalysis(path, text, display_path)
    fa.check_plain_shared_access()
    fa.check_unbounded_fixpoint(cc_scope=_is_cc_scope(path))
    fa.check_pvector_by_value()
    fa.check_atomic_ref(exempt=_exempt_suffix(path, "util/parallel.hpp"))
    fa.check_rng_seed(exempt=_exempt_suffix(path, "util/rng.hpp"))
    fa.check_raw_getenv(exempt=False)
    serve_rules.run(fa, path)
    return fa.apply_suppressions()
