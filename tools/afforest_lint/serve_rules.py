"""Serving-tier discipline rules (S1-S5) and the include-layering rule.

The serving tier (src/serve) relies on a handful of hand-enforced
invariants — single-writer mutation, RCU snapshot publication, and the
WAL -> checkpoint -> manifest durability ordering — that a one-line diff
can silently break without any test noticing until a crash sweep happens
to hit it.  These rules make the disciplines mechanically checkable:

  S1 afforest-serve-writer-discipline
      Public mutating (non-const) methods of the engine classes must
      construct WriterLock, delegate to a locked writer entry point, or
      carry a '// lint: single-writer(<reason>)' waiver.  Const methods
      (the wait-free read path) must not reference members annotated
      `writer-only` in a trailing comment.
  S2 afforest-serve-rcu-publication
      Reader-visible label/forest state is published only through the
      SnapshotStore swap: no roll-your-own std::atomic<T*> published
      pointers and no direct stores into published snapshot labels
      outside snapshot_store.hpp.
  S3 afforest-serve-durability-order
      Intra-function ordering dataflow over the posix_file/wal/
      checkpoint/manifest vocabulary: WAL append before apply, file
      write -> fsync -> rename -> parent-dir fsync, manifest replace
      strictly after the checkpoint it names is durable.  Waive a
      deliberate deviation with '// lint: durability-order(<reason>)'.
  S4 afforest-serve-raw-posix
      No raw ::open/::write/::fsync/::rename/... outside posix_file.hpp;
      everything goes through the checked wrappers so IoError taxonomy
      and failpoint hooks stay centralized.
  S5 afforest-serve-failpoint-coverage
      Every durability site (write/fsync/rename wrapper call) must sit in
      a function that evaluates a registered failpoint, or carry a
      '// lint: failpoint(<reason>)' waiver — keeping the crash sweep
      exhaustive by construction.

  afforest-include-layering
      `#include "..."` edges must respect LAYER_ALLOWED: src/cc and
      src/graph never include src/serve; src/serve never includes
      bench/ or apps/.  Corpus fixtures opt in via '// lint-layer: <x>'.

Scope: a file is serve-scope when its path contains src/serve/ or
src/shard/ (the sharded coordinator obeys the same single-writer + RCU
disciplines) or it carries a '// lint-scope: serve' marker (fixtures).
posix_file.hpp is the wrapper layer itself and is exempt from S3/S4/S5;
snapshot_store.hpp IS the publication mechanism and is exempt from S2.
"""

from __future__ import annotations

import os
import re

from . import diagnostics as diag

# The serving-tier engine classes under the single-writer protocol.  A
# class also opts in structurally by declaring the writer flag member.
SERVE_ENGINE_CLASSES = frozenset(
    {"QueryEngine", "DynamicCC", "DurableEngine", "WindowedStream",
     "ShardedEngine"}
)
_WRITER_FLAG_RE = re.compile(r"\bstd::atomic<\s*bool\s*>\s+writer_active_")

# Methods that are themselves checked (or waived) writer entry points;
# a public mutator that funnels through one of these inherits the lock.
WRITER_ENTRY_METHODS = frozenset(
    {
        "apply_inserts",
        "apply_deletes",
        "apply_batch",
        "apply_and_publish",
        "publish",
        "restore_state",
        "restore_ring",
        "push",
        "expire_oldest",
        "drain",
        "insert",
        "erase",
        "tick",
        "checkpoint",
        "mutate",
        "apply",
    }
)
_WRITER_ENTRY_RE = re.compile(
    r"\b(?:" + "|".join(sorted(WRITER_ENTRY_METHODS)) + r")\s*\("
)
_WRITER_LOCK_RE = re.compile(r"\bWriterLock\b")

# S2: roll-your-own RCU publication patterns.
_ATOMIC_PTR_RE = re.compile(r"\bstd::atomic\s*<[^;<>()]*\*\s*>")
_PUBLISHED_IDENT_RE = re.compile(r"\bpublished_(?!\w)")
_VIEW_LABEL_STORE_RE = re.compile(r"\.labels\(\)\s*\[[^\]]*\]\s*=(?!=)")
_VIEW_LABEL_ATOMIC_RE = re.compile(
    r"\b(?:atomic_store|compare_and_swap|fetch_and_add|atomic_fetch_min)"
    r"\s*\(\s*[\w.\->]*\.labels\(\)\s*\["
)

# S3: the call-sequence vocabulary, in source-offset order per function.
# atomic_write_file is a blessed composite (it owns the full
# write->fsync->rename->dirsync chain internally) and is deliberately
# absent from the write/rename categories.
_SEQ_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("write", re.compile(r"\b(?:fd_write_all|fd_truncate)\s*\(")),
    ("sync", re.compile(r"\bfd_sync\s*\(")),
    ("dirsync", re.compile(r"\bfsync_parent_dir\s*\(")),
    (
        "rename",
        re.compile(r"\brename_into_place\s*\(|(?<![\w)])::\s*rename\s*\("),
    ),
    ("ckpt", re.compile(r"\bwrite_checkpoint\s*\(")),
    ("manifest", re.compile(r"\bwrite_manifest\s*\(")),
    ("append", re.compile(r"\b\w*wal\w*\s*(?:\.|->)\s*append\s*\(")),
    ("apply", re.compile(r"\bapply(?:_inserts|_deletes|_batch)?\s*\(")),
)

# S4: raw POSIX entry points that must stay behind posix_file.hpp.  The
# lookbehind keeps qualified names (WalReader::open) out of scope: a raw
# call is written with a global-scope `::` preceded by nothing.
_RAW_POSIX_RE = re.compile(
    r"(?<![\w)])::\s*(open|openat|close|read|pread|write|pwrite|fsync|"
    r"fdatasync|ftruncate|truncate|rename|renameat|unlink|unlinkat|"
    r"mkdir|rmdir|lseek|stat|fstat|opendir|readdir|closedir)\s*\("
)

# S5: durability sites — the checked wrapper calls a crash can interrupt.
_S5_SITE_RE = re.compile(
    r"\b(fd_write_all|fd_sync|fd_truncate|fsync_parent_dir|"
    r"rename_into_place|atomic_write_file)\s*\("
)
_FAILPOINT_CALL_RE = re.compile(
    r"\bfailpoint_(?:maybe_fail|triggered)\s*\("
)

# Declared layer map: layer -> include segments it may depend on.  Edges
# the tentpole hardens: serve is absent from cc/graph/analysis, and
# bench/apps are absent from serve.
LAYER_ALLOWED: dict[str, frozenset[str]] = {
    "util": frozenset({"util"}),
    "graph": frozenset({"graph", "util"}),
    "analysis": frozenset({"analysis", "cc", "graph", "util"}),
    "cc": frozenset({"cc", "analysis", "graph", "util"}),
    "exec": frozenset({"exec", "cc", "graph", "util"}),
    "dist": frozenset({"dist", "cc", "analysis", "graph", "util"}),
    "serve": frozenset({"serve", "cc", "analysis", "graph", "util"}),
    # The sharded coordinator composes serve engines with the dist layer's
    # partition map and quotient structures; it sits above both.
    "shard": frozenset(
        {"shard", "serve", "dist", "cc", "analysis", "graph", "util"}
    ),
    "bench": frozenset(
        {"bench", "shard", "exec", "dist", "serve", "cc", "analysis",
         "graph", "util"}
    ),
    "apps": frozenset(
        {"apps", "bench", "shard", "exec", "dist", "serve", "cc", "analysis",
         "graph", "util"}
    ),
}

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
_SRC_LAYER_RE = re.compile(
    r"/src/(util|graph|analysis|cc|exec|dist|serve|shard)/"
)


def _norm(path: str) -> str:
    return "/" + path.replace(os.sep, "/")


def is_serve_scope(path: str, fa) -> bool:
    norm = _norm(path)
    return ("/src/serve/" in norm or "/src/shard/" in norm
            or fa.serve_scope_marker)


def _exempt(path: str, suffix: str) -> bool:
    return _norm(path).endswith(suffix)


def file_layer(path: str, marker: str | None) -> str | None:
    """Layer a file belongs to: by path for real sources, by the
    '// lint-layer: <x>' marker for fixtures; None = not layered."""
    norm = _norm(path)
    m = _SRC_LAYER_RE.search(norm)
    if m:
        return m.group(1)
    if "/apps/" in norm:
        return "apps"
    if "/bench/" in norm:
        return "bench"
    return marker


def call_sequence(code: str, base: int = 0) -> list[tuple[int, str]]:
    """The S3 ordering model: (offset, category) events for every
    durability-vocabulary call in `code`, sorted by source offset.
    Categories: write, sync, dirsync, rename, ckpt, manifest, append,
    apply.  Exposed as a plain function so unit tests can drive it on
    synthetic token streams."""
    events: list[tuple[int, str]] = []
    for category, rx in _SEQ_PATTERNS:
        for m in rx.finditer(code):
            events.append((base + m.start(), category))
    events.sort()
    return events


def ordering_violations(
    events: list[tuple[int, str]]
) -> list[tuple[int, str]]:
    """(offset, message) for every S3 ordering violation in one
    function's event sequence."""
    out: list[tuple[int, str]] = []
    offsets = {cat: [o for o, c in events if c == cat]
               for cat in ("write", "sync", "dirsync", "rename", "ckpt",
                           "manifest", "append", "apply")}
    for r in offsets["rename"]:
        prior_writes = [w for w in offsets["write"] if w < r]
        if prior_writes:
            last_write = max(prior_writes)
            if not any(last_write < s < r for s in offsets["sync"]):
                out.append(
                    (r, "rename-into-place before the written bytes are "
                        "fsynced; order is write -> fsync -> rename")
                )
        if not any(d > r for d in offsets["dirsync"]):
            out.append(
                (r, "renamed entry is not durable: fsync_parent_dir must "
                    "follow the rename")
            )
    if offsets["manifest"] and offsets["ckpt"]:
        first_manifest = min(offsets["manifest"])
        if first_manifest < max(offsets["ckpt"]):
            out.append(
                (first_manifest,
                 "manifest replaced before the checkpoint it names is "
                 "durable; write and fsync the checkpoint first")
            )
    if offsets["append"] and offsets["apply"]:
        first_apply = min(offsets["apply"])
        if first_apply < min(offsets["append"]):
            out.append(
                (first_apply,
                 "state applied before the WAL record is journaled; the "
                 "discipline is journal-then-apply")
            )
    out.sort()
    return out


def _is_engine_class(fa, cls) -> bool:
    if cls.name in SERVE_ENGINE_CLASSES:
        return True
    return bool(_WRITER_FLAG_RE.search(fa.code[cls.body_start:cls.body_end]))


def _waiver_reason(fa, table: dict[int, tuple[int, str]], func,
                   empty_message: str) -> str | None:
    """Reason of the function-level waiver covering `func`, or None when
    there is no waiver.  An empty reason reports W1 (once) and still
    counts as a waiver — matching the `lint: bounded` behaviour."""
    entry = table.get(func.sig_start)
    if entry is None:
        return None
    marker_line, reason = entry
    if not reason:
        fa._emit(marker_line, diag.WAIVER_MISSING_REASON, empty_message,
                 is_line=True)
        # only report once per marker even if re-queried
        table[func.sig_start] = (marker_line, " ")
        return " "
    return reason


def check_writer_discipline(fa, path: str) -> None:
    """S1: public mutators hold the writer lock; const methods stay off
    writer-only state."""
    if _exempt(path, "serve/writer_lock.hpp"):
        return
    engine_classes = [c for c in fa.classes if _is_engine_class(fa, c)]
    for f in fa.functions:
        owner = fa.class_of(f.sig_start)
        if owner is None or owner not in engine_classes:
            continue
        if f.is_const or f.is_static:
            continue
        if f.name == owner.name:
            continue  # constructor/destructor
        if owner.access_at(f.sig_start) != "public":
            continue
        body = fa.code[f.body_start:f.body_end]
        if _WRITER_LOCK_RE.search(body) or _WRITER_ENTRY_RE.search(body):
            continue
        if _waiver_reason(
            fa, fa.single_writer_by_func, f,
            "'lint: single-writer()' waiver needs a reason explaining why "
            "this mutator is safe without the writer lock",
        ) is not None:
            continue
        fa._emit(
            f.sig_start,
            diag.SERVE_WRITER_DISCIPLINE,
            f"public mutating method '{owner.name}::{f.name}' does not "
            f"hold the writer lock; construct WriterLock, delegate to a "
            f"locked entry point, or waive with "
            f"'// lint: single-writer(<reason>)'",
        )
    # Reader half: const methods must not reference writer-only members.
    for cls in fa.classes:
        if not cls.writer_only_members:
            continue
        for f in fa.functions:
            if not f.is_const or fa.class_of(f.sig_start) is not cls:
                continue
            body = fa.code[f.body_start:f.body_end]
            for member in cls.writer_only_members:
                m = re.search(r"\b" + re.escape(member) + r"\b", body)
                if m:
                    fa._emit(
                        f.body_start + m.start(),
                        diag.SERVE_WRITER_DISCIPLINE,
                        f"const (reader-path) method '{cls.name}::{f.name}'"
                        f" touches writer-only member '{member}'; "
                        f"writer-plane state must stay off the read path",
                    )


def check_rcu_publication(fa, path: str) -> None:
    """S2: publication of reader-visible state only via SnapshotStore."""
    if _exempt(path, "serve/snapshot_store.hpp"):
        return
    for m in _ATOMIC_PTR_RE.finditer(fa.code):
        fa._emit(
            m.start(),
            diag.SERVE_RCU_PUBLICATION,
            "roll-your-own std::atomic<T*> publication; reader-visible "
            "snapshots are published only through SnapshotStore's swap",
        )
    for m in _PUBLISHED_IDENT_RE.finditer(fa.code):
        fa._emit(
            m.start(),
            diag.SERVE_RCU_PUBLICATION,
            "direct access to a published-snapshot field outside "
            "SnapshotStore; go through acquire()/publish()",
        )
    for rx in (_VIEW_LABEL_STORE_RE, _VIEW_LABEL_ATOMIC_RE):
        for m in rx.finditer(fa.code):
            fa._emit(
                m.start(),
                diag.SERVE_RCU_PUBLICATION,
                "store into published snapshot labels; snapshots are "
                "immutable once published — mutate the writer-side copy "
                "and republish through SnapshotStore",
            )


def check_durability_order(fa, path: str) -> None:
    """S3: per-function ordering dataflow over the durability calls."""
    if _exempt(path, "serve/posix_file.hpp"):
        return  # the wrapper layer itself; callers own the ordering
    for f in fa.functions:
        events = call_sequence(fa.code[f.body_start:f.body_end],
                               base=f.body_start)
        if not events:
            continue
        violations = ordering_violations(events)
        if not violations:
            continue
        if _waiver_reason(
            fa, fa.durability_by_func, f,
            "'lint: durability-order()' waiver needs a reason explaining "
            "why the deviating order is still crash-safe",
        ) is not None:
            continue
        for offset, message in violations:
            fa._emit(offset, diag.SERVE_DURABILITY_ORDER, message)


def check_raw_posix(fa, path: str) -> None:
    """S4: raw POSIX syscalls only inside posix_file.hpp."""
    if _exempt(path, "serve/posix_file.hpp"):
        return
    for m in _RAW_POSIX_RE.finditer(fa.code):
        fa._emit(
            m.start(),
            diag.SERVE_RAW_POSIX,
            f"raw ::{m.group(1)} call outside posix_file.hpp; use the "
            f"checked wrappers so error taxonomy and failpoints stay "
            f"centralized",
        )


def check_failpoint_coverage(fa, path: str) -> None:
    """S5: every durability site is reachable by the crash sweep."""
    if _exempt(path, "serve/posix_file.hpp"):
        return
    for f in fa.functions:
        body = fa.code[f.body_start:f.body_end]
        if _FAILPOINT_CALL_RE.search(body):
            continue  # the function evaluates a registered failpoint
        sites = list(_S5_SITE_RE.finditer(body))
        if not sites:
            continue
        if _waiver_reason(
            fa, fa.failpoint_by_func, f,
            "'lint: failpoint()' waiver needs a reason explaining why "
            "this durability site needs no crash-sweep coverage",
        ) is not None:
            continue
        seen_lines: set[int] = set()
        for m in sites:
            offset = f.body_start + m.start()
            line = fa.line_of(offset)
            if line in seen_lines:
                continue
            seen_lines.add(line)
            fa._emit(
                offset,
                diag.SERVE_FAILPOINT_COVERAGE,
                f"durability site '{m.group(1)}' has no failpoint "
                f"coverage; evaluate a registered failpoint in this "
                f"function or waive with '// lint: failpoint(<reason>)'",
            )


def check_include_layering(fa, path: str) -> None:
    """Include edges must respect the declared LAYER_ALLOWED map."""
    layer = file_layer(path, fa.layer_marker)
    if layer is None:
        return
    allowed = LAYER_ALLOWED.get(layer)
    if allowed is None:
        return
    for idx, line in enumerate(fa.raw_lines):
        m = _INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1)
        segment = target.split("/", 1)[0]
        if segment not in LAYER_ALLOWED or segment in allowed:
            continue
        fa._emit(
            idx + 1,
            diag.INCLUDE_LAYERING,
            f"layer '{layer}' must not include \"{target}\" (allowed "
            f"layers: {', '.join(sorted(allowed))}); invert the "
            f"dependency or move the shared piece down a layer",
            is_line=True,
        )


def run(fa, path: str) -> None:
    """Entry point: apply the layering rule everywhere and the serve
    family to serve-scope files."""
    check_include_layering(fa, path)
    if not is_serve_scope(path, fa):
        return
    check_writer_discipline(fa, path)
    check_rcu_publication(fa, path)
    check_durability_order(fa, path)
    check_raw_posix(fa, path)
    check_failpoint_coverage(fa, path)
