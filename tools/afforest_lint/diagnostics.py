"""Diagnostic codes and the Diagnostic record emitted by the engine."""

from __future__ import annotations

import dataclasses

# L1: atomic-access discipline inside parallel regions.
PLAIN_SHARED_ACCESS = "afforest-plain-shared-access"
# L2: convergence-guard discipline for fixpoint loops in src/cc.
UNBOUNDED_FIXPOINT = "afforest-unbounded-fixpoint"
# L3: general hygiene rules.
PVECTOR_BY_VALUE = "afforest-pvector-by-value"
ATOMIC_REF_LOCAL = "afforest-atomic-ref-local"
RNG_SEED = "afforest-rng-seed"
RAW_GETENV = "afforest-raw-getenv"
# W1: a waiver (NOLINT or lint: bounded) without a reason string.
WAIVER_MISSING_REASON = "afforest-waiver-missing-reason"

ALL_CODES = (
    PLAIN_SHARED_ACCESS,
    UNBOUNDED_FIXPOINT,
    PVECTOR_BY_VALUE,
    ATOMIC_REF_LOCAL,
    RNG_SEED,
    RAW_GETENV,
    WAIVER_MISSING_REASON,
)

DESCRIPTIONS = {
    PLAIN_SHARED_ACCESS: (
        "subscript access to a shared component array inside a parallel "
        "region must go through atomic_load/atomic_store/compare_and_swap/"
        "atomic_fetch_min/fetch_and_add"
    ),
    UNBOUNDED_FIXPOINT: (
        "fixpoint loop in src/cc must call check_convergence_guard (see "
        "cc/guards.hpp) or carry a '// lint: bounded(<reason>)' waiver"
    ),
    PVECTOR_BY_VALUE: (
        "pvector taken by value copies the whole array; pass by (const) "
        "reference, or std::move it if the parameter is a sink"
    ),
    ATOMIC_REF_LOCAL: (
        "raw std::atomic_ref construction outside util/parallel.hpp; use "
        "the atomic_* helpers so lifetime and ordering stay centralized"
    ),
    RNG_SEED: (
        "non-deterministic RNG seeding outside util/rng.hpp breaks "
        "reproducible benchmarks; take seeds from util/rng.hpp or the CLI"
    ),
    RAW_GETENV: (
        "raw std::getenv call site; go through the typed accessors in "
        "util/env.hpp"
    ),
    WAIVER_MISSING_REASON: (
        "waiver without a reason string; write "
        "'// NOLINT(<code>): <why>' or '// lint: bounded(<why>)'"
    ),
}


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    path: str
    line: int  # 1-based
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"
