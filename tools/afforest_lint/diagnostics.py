"""Diagnostic codes and the Diagnostic record emitted by the engine."""

from __future__ import annotations

import dataclasses

# L1: atomic-access discipline inside parallel regions.
PLAIN_SHARED_ACCESS = "afforest-plain-shared-access"
# L2: convergence-guard discipline for fixpoint loops in src/cc.
UNBOUNDED_FIXPOINT = "afforest-unbounded-fixpoint"
# L3: general hygiene rules.
PVECTOR_BY_VALUE = "afforest-pvector-by-value"
ATOMIC_REF_LOCAL = "afforest-atomic-ref-local"
RNG_SEED = "afforest-rng-seed"
RAW_GETENV = "afforest-raw-getenv"
# W1: a waiver (NOLINT or lint: bounded) without a reason string.
WAIVER_MISSING_REASON = "afforest-waiver-missing-reason"
# S1: single-writer discipline for the serving-tier engine classes.
SERVE_WRITER_DISCIPLINE = "afforest-serve-writer-discipline"
# S2: reader-visible state may only be published through SnapshotStore.
SERVE_RCU_PUBLICATION = "afforest-serve-rcu-publication"
# S3: intra-function ordering over the WAL/checkpoint/manifest chain.
SERVE_DURABILITY_ORDER = "afforest-serve-durability-order"
# S4: raw POSIX calls outside the posix_file.hpp wrapper layer.
SERVE_RAW_POSIX = "afforest-serve-raw-posix"
# S5: durability sites without failpoint coverage.
SERVE_FAILPOINT_COVERAGE = "afforest-serve-failpoint-coverage"
# Layering: includes must respect the declared layer map.
INCLUDE_LAYERING = "afforest-include-layering"

ALL_CODES = (
    PLAIN_SHARED_ACCESS,
    UNBOUNDED_FIXPOINT,
    PVECTOR_BY_VALUE,
    ATOMIC_REF_LOCAL,
    RNG_SEED,
    RAW_GETENV,
    WAIVER_MISSING_REASON,
    SERVE_WRITER_DISCIPLINE,
    SERVE_RCU_PUBLICATION,
    SERVE_DURABILITY_ORDER,
    SERVE_RAW_POSIX,
    SERVE_FAILPOINT_COVERAGE,
    INCLUDE_LAYERING,
)

DESCRIPTIONS = {
    PLAIN_SHARED_ACCESS: (
        "subscript access to a shared component array inside a parallel "
        "region must go through atomic_load/atomic_store/compare_and_swap/"
        "atomic_fetch_min/fetch_and_add"
    ),
    UNBOUNDED_FIXPOINT: (
        "fixpoint loop in src/cc must call check_convergence_guard (see "
        "cc/guards.hpp) or carry a '// lint: bounded(<reason>)' waiver"
    ),
    PVECTOR_BY_VALUE: (
        "pvector taken by value copies the whole array; pass by (const) "
        "reference, or std::move it if the parameter is a sink"
    ),
    ATOMIC_REF_LOCAL: (
        "raw std::atomic_ref construction outside util/parallel.hpp; use "
        "the atomic_* helpers so lifetime and ordering stay centralized"
    ),
    RNG_SEED: (
        "non-deterministic RNG seeding outside util/rng.hpp breaks "
        "reproducible benchmarks; take seeds from util/rng.hpp or the CLI"
    ),
    RAW_GETENV: (
        "raw std::getenv call site; go through the typed accessors in "
        "util/env.hpp"
    ),
    WAIVER_MISSING_REASON: (
        "waiver without a reason string; write "
        "'// NOLINT(<code>): <why>' or '// lint: bounded(<why>)'"
    ),
    SERVE_WRITER_DISCIPLINE: (
        "public mutating methods of the serving engines must construct "
        "WriterLock, delegate to a locked entry point, or carry a "
        "'// lint: single-writer(<reason>)' waiver; const (reader-path) "
        "methods must not touch writer-only members"
    ),
    SERVE_RCU_PUBLICATION: (
        "reader-visible label/forest state may only be published through "
        "the SnapshotStore swap; no roll-your-own std::atomic<T*> "
        "publication or direct stores to published-snapshot fields"
    ),
    SERVE_DURABILITY_ORDER: (
        "durability chain out of order: WAL append before apply, file "
        "write -> fsync -> rename -> parent-dir fsync, and the manifest "
        "replaced only after the checkpoint it names is durable"
    ),
    SERVE_RAW_POSIX: (
        "raw ::open/::write/::fsync/::rename etc. in src/serve outside "
        "posix_file.hpp; go through the checked wrappers so error paths "
        "and failpoints stay centralized"
    ),
    SERVE_FAILPOINT_COVERAGE: (
        "durability site (write/fsync/rename wrapper call) without "
        "failpoint coverage in its function; declare a registered "
        "failpoint or waive with '// lint: failpoint(<reason>)' so the "
        "crash sweep stays exhaustive by construction"
    ),
    INCLUDE_LAYERING: (
        "include crosses the declared layer map (e.g. src/cc or "
        "src/graph including src/serve, or src/serve including "
        "bench/apps); invert the dependency or move the shared piece "
        "down a layer"
    ),
}


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    path: str
    line: int  # 1-based
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"
