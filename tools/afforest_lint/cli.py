"""Command-line entry point for afforest-lint.

Usage:
  afforest-lint [options] <file-or-dir>...      lint sources
  afforest-lint --sarif out.sarif <paths>...    also emit SARIF 2.1.0
  afforest-lint --selftest <corpus-dir>         run the fixture corpus
  afforest-lint --list-codes                    print every diagnostic code

Exit status: 0 clean, 1 diagnostics emitted (or selftest failures),
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__, clang_backend, engine, sarif
from . import diagnostics as diag
from .selftest import run_selftest

_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc")


def collect_sources(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(_EXTENSIONS):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(path)
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="afforest-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--selftest", metavar="DIR",
                        help="run the fixture corpus in DIR and exit")
    parser.add_argument("--list-codes", action="store_true",
                        help="print all diagnostic codes and exit")
    parser.add_argument("--backend", choices=("structural", "clang", "auto"),
                        default="auto",
                        help="analysis backend; 'clang' additionally "
                        "cross-checks via libclang when importable "
                        "(default: auto = structural + clang if available)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir with compile_commands.json for the "
                        "clang backend")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="additionally write the diagnostics as a "
                        "SARIF 2.1.0 document to PATH (lint mode only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    parser.add_argument("--version", action="version", version=__version__)
    args = parser.parse_args(argv)

    if args.list_codes:
        for code in diag.ALL_CODES:
            print(f"{code}: {diag.DESCRIPTIONS[code]}")
        return 0

    if args.selftest:
        failures, report = run_selftest(args.selftest)
        for line in report:
            print(line)
        if failures:
            print(f"selftest: {failures} fixture(s) FAILED", file=sys.stderr)
            return 1
        if not args.quiet:
            print("selftest: all fixtures passed")
        return 0

    if not args.paths:
        parser.error("no input files (or use --selftest / --list-codes)")

    try:
        files = collect_sources(args.paths)
    except FileNotFoundError as e:
        print(f"afforest-lint: no such file or directory: {e}", file=sys.stderr)
        return 2

    all_diags: list[diag.Diagnostic] = []
    for path in files:
        try:
            all_diags.extend(engine.analyze_file(path))
        except Exception as e:  # diagnose, don't crash the whole run
            print(f"afforest-lint: internal error analyzing {path}: {e}",
                  file=sys.stderr)
            return 2

    if args.backend in ("clang", "auto") and args.build_dir:
        if clang_backend.available():
            roots = [p for p in args.paths if os.path.isdir(p)]
            all_diags.extend(
                clang_backend.check_compile_commands(args.build_dir, roots)
            )
        elif args.backend == "clang":
            print("afforest-lint: clang backend requested but the clang "
                  "python bindings are not importable; structural results "
                  "only", file=sys.stderr)

    if args.sarif:
        try:
            sarif.write_sarif(args.sarif, all_diags)
        except OSError as e:
            print(f"afforest-lint: cannot write SARIF to {args.sarif}: {e}",
                  file=sys.stderr)
            return 2

    for d in all_diags:
        print(d.render())
    if not args.quiet:
        print(f"afforest-lint: {len(files)} file(s), "
              f"{len(all_diags)} diagnostic(s)", file=sys.stderr)
    return 1 if all_diags else 0


if __name__ == "__main__":
    sys.exit(main())
